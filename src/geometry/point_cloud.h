/**
 * @file
 * Point cloud container.
 *
 * A point cloud is the set x = {(p_k, f_k)} of Section II-A: XYZ
 * coordinates plus an optional fixed-width per-point feature vector.
 * Storage is structure-of-arrays so that coordinate-only passes
 * (octree build, sampling) never touch feature memory.
 */

#ifndef HGPCN_GEOMETRY_POINT_CLOUD_H
#define HGPCN_GEOMETRY_POINT_CLOUD_H

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hgpcn
{

/** Index of a point inside a PointCloud. */
using PointIndex = std::uint32_t;

/**
 * A set of 3D points with an optional per-point feature vector of
 * uniform width.
 */
class PointCloud
{
  public:
    /** Create an empty cloud whose points carry @p feature_dim floats. */
    explicit PointCloud(std::size_t feature_dim = 0)
        : featDim(feature_dim)
    {}

    /** @return number of points. */
    std::size_t size() const { return pos.size(); }

    /** @return true when the cloud holds no points. */
    bool empty() const { return pos.empty(); }

    /** @return width of the per-point feature vector (may be 0). */
    std::size_t featureDim() const { return featDim; }

    /** Pre-allocate capacity for @p n points. */
    void reserve(std::size_t n);

    /** Append a point with zeroed features. */
    void add(const Vec3 &p);

    /** Append a point with features (must match featureDim()). */
    void add(const Vec3 &p, std::span<const float> features);

    /** @return coordinate of point @p i. */
    const Vec3 &position(PointIndex i) const { return pos[i]; }

    /** @return mutable coordinate of point @p i. */
    Vec3 &position(PointIndex i) { return pos[i]; }

    /** @return all coordinates. */
    const std::vector<Vec3> &positions() const { return pos; }

    /** @return feature vector of point @p i. */
    std::span<const float> feature(PointIndex i) const;

    /** @return mutable feature vector of point @p i. */
    std::span<float> feature(PointIndex i);

    /** @return axis-aligned bounds of all points. */
    Aabb bounds() const;

    /**
     * Scale and translate all coordinates into the unit cube [0,1]^3
     * (the normalization most down-sampling methods perform before
     * sampling, per Section V). No-op on an empty cloud.
     */
    void normalizeToUnitCube();

    /**
     * @return a new cloud containing the points listed in @p indices
     * (in that order), carrying their features.
     */
    PointCloud gather(std::span<const PointIndex> indices) const;

    /**
     * Overwrite this cloud with the points of @p src listed in
     * @p indices (in that order), carrying their features. Identical
     * output to gather(), but storage capacity is reused — the
     * pooled-octree rebuild path (zero-alloc steady state).
     */
    void assignGathered(const PointCloud &src,
                        std::span<const PointIndex> indices);

    /** Drop all points; feature width and capacity are kept. */
    void clear();

    /** @return allocated point capacity (growth accounting). */
    std::size_t capacity() const { return pos.capacity(); }

    /**
     * @return a copy of this cloud with points permuted so that
     * point i of the result is point perm[i] of this cloud. Used by
     * the octree's host-memory pre-configuration step.
     */
    PointCloud reordered(std::span<const PointIndex> perm) const;

  private:
    std::size_t featDim;
    std::vector<Vec3> pos;
    std::vector<float> feat; // row-major, featDim floats per point
};

} // namespace hgpcn

#endif // HGPCN_GEOMETRY_POINT_CLOUD_H
