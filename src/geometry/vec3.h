/**
 * @file
 * Minimal 3-vector used for point coordinates.
 */

#ifndef HGPCN_GEOMETRY_VEC3_H
#define HGPCN_GEOMETRY_VEC3_H

#include <cmath>

namespace hgpcn
{

/**
 * A 3-component float vector (point coordinate p_k = (x_k, y_k, z_k)
 * in the paper's notation).
 */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }

    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    constexpr bool
    operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    /** Dot product. */
    constexpr float
    dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    /** Squared Euclidean norm. */
    constexpr float normSq() const { return dot(*this); }

    /** Euclidean norm. */
    float norm() const { return std::sqrt(normSq()); }

    /** Squared distance to @p o (preferred in inner loops). */
    constexpr float
    distSq(const Vec3 &o) const
    {
        return (*this - o).normSq();
    }

    /** Euclidean distance to @p o. */
    float dist(const Vec3 &o) const { return std::sqrt(distSq(o)); }

    /** Component-wise minimum. */
    static constexpr Vec3
    min(const Vec3 &a, const Vec3 &b)
    {
        return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.z < b.z ? a.z : b.z};
    }

    /** Component-wise maximum. */
    static constexpr Vec3
    max(const Vec3 &a, const Vec3 &b)
    {
        return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
                a.z > b.z ? a.z : b.z};
    }
};

} // namespace hgpcn

#endif // HGPCN_GEOMETRY_VEC3_H
