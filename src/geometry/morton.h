/**
 * @file
 * Morton m-codes and Space-Filling-Curve helpers.
 *
 * The paper's spatial index (Section V) keys every octree voxel with a
 * Morton m-code [18]: each subdivision appends three bits where the
 * first bit is the X half, the second the Y half and the third the Z
 * half of the parent voxel (two bits, X then Y, in the 2D quadtree
 * illustration of Fig. 5). Sorting points by their full-depth m-code
 * yields the SFC traversal order that the Octree-based host-memory
 * reorganization uses, and the Hamming distance between two m-codes is
 * the voxel-distance metric evaluated by the Sampling Modules (Fig. 7)
 * with a single XOR + popcount.
 */

#ifndef HGPCN_GEOMETRY_MORTON_H
#define HGPCN_GEOMETRY_MORTON_H

#include <bit>
#include <cstdint>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hgpcn
{
namespace morton
{

/** Deepest supported octree level (3 bits/level in a 64-bit code). */
constexpr int kMaxDepth3d = 21;

/** Deepest supported quadtree level (2 bits/level). */
constexpr int kMaxDepth2d = 31;

/** Integer cell coordinate along one axis at some level. */
using CellCoord = std::uint32_t;

/** A Morton code; interpretation depends on the level it pairs with. */
using Code = std::uint64_t;

/** Spread the low 21 bits of @p v so consecutive bits are 3 apart. */
Code expandBits3(std::uint32_t v);

/** Inverse of expandBits3: gather every third bit. */
std::uint32_t compactBits3(Code v);

/** Spread the low 31 bits of @p v so consecutive bits are 2 apart. */
Code expandBits2(std::uint32_t v);

/** Inverse of expandBits2. */
std::uint32_t compactBits2(Code v);

/**
 * Encode a 3D cell into a Morton code of 3*depth bits.
 *
 * Bit layout per level (most significant group = level 1): X,Y,Z —
 * matching the paper's "first bit represents the X-axis" convention.
 *
 * @param x,y,z Cell coordinates in [0, 2^depth).
 * @param depth Octree depth (1..kMaxDepth3d).
 */
Code encode3(CellCoord x, CellCoord y, CellCoord z, int depth);

/** Decode a 3*depth-bit Morton code back into cell coordinates. */
void decode3(Code code, int depth, CellCoord &x, CellCoord &y, CellCoord &z);

/** Encode a 2D (quadtree) cell: X bit then Y bit per level. */
Code encode2(CellCoord x, CellCoord y, int depth);

/** Decode a 2*depth-bit quadtree code. */
void decode2(Code code, int depth, CellCoord &x, CellCoord &y);

/** @return code of the @p octant child (0..7) of @p parent. */
constexpr Code
child3(Code parent, unsigned octant)
{
    return (parent << 3) | (octant & 7u);
}

/** @return code of the parent voxel. */
constexpr Code
parent3(Code code)
{
    return code >> 3;
}

/** @return which octant (0..7) of its parent this voxel is. */
constexpr unsigned
octant3(Code code)
{
    return static_cast<unsigned>(code & 7u);
}

/**
 * @return the ancestor of a full-depth @p code at @p level
 * (level 0 = root, i.e. code 0).
 */
constexpr Code
ancestorAt(Code code, int full_depth, int level)
{
    return code >> (3 * (full_depth - level));
}

/**
 * Hamming distance between two m-codes of equal bit length — the
 * voxel distance metric of the Sampling Modules (XOR + popcount).
 */
constexpr int
hamming(Code a, Code b)
{
    return std::popcount(a ^ b);
}

/**
 * XOR magnitude between two codes. Used as the tie-breaker in the
 * farthest-voxel descent: a larger XOR flips more significant (i.e.
 * coarser, geometrically larger) axes first.
 */
constexpr Code
xorMagnitude(Code a, Code b)
{
    return a ^ b;
}

/**
 * Map a point to its integer cell coordinates at @p depth inside the
 * (cubified) root voxel @p root.
 *
 * Points must lie inside @p root; coordinates are clamped to the grid
 * so boundary points land in the last cell.
 */
void cellOf(const Vec3 &p, const Aabb &root, int depth, CellCoord &x,
            CellCoord &y, CellCoord &z);

/** Convenience: full-depth m-code of point @p p inside @p root. */
Code pointCode3(const Vec3 &p, const Aabb &root, int depth);

/**
 * @return center of the voxel identified by @p code at @p level
 * within @p root.
 */
Vec3 voxelCenter(Code code, int level, const Aabb &root);

/** @return edge length of a voxel at @p level within @p root. */
float voxelSize(int level, const Aabb &root);

/** @return axis-aligned bounds of a voxel. */
Aabb voxelBounds(Code code, int level, const Aabb &root);

/**
 * Render a code as the paper's bit-string notation (e.g. "110101"
 * for a level-3 quadtree voxel) for debugging and examples.
 */
std::uint64_t codeBits(Code code, int level, int dims);

} // namespace morton
} // namespace hgpcn

#endif // HGPCN_GEOMETRY_MORTON_H
