#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hgpcn
{

void
StatSet::add(const std::string &name, std::uint64_t delta)
{
    counters[name] += delta;
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    counters[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters.find(name) != counters.end();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
}

void
StatSet::clear()
{
    counters.clear();
}

std::string
StatSet::toString() const
{
    std::ostringstream oss;
    for (const auto &[name, value] : counters)
        oss << name << "=" << value << "\n";
    return oss.str();
}

void
ConcurrentStatSet::merge(const StatSet &delta)
{
    std::lock_guard<std::mutex> lock(mu);
    aggregate.merge(delta);
}

void
ConcurrentStatSet::add(const std::string &name, std::uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mu);
    aggregate.add(name, delta);
}

StatSet
ConcurrentStatSet::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return aggregate;
}

void
ConcurrentStatSet::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    aggregate.clear();
}

double
percentileNearestRank(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t idx =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace hgpcn
