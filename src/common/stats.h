/**
 * @file
 * Lightweight named statistic counters.
 *
 * Algorithms in this library report their workload (memory accesses,
 * distances computed, sort candidates, ...) through StatSet so that
 * benches and simulators consume identical numbers. A StatSet is a
 * plain value type: copyable, mergeable, and printable.
 */

#ifndef HGPCN_COMMON_STATS_H
#define HGPCN_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hgpcn
{

/**
 * A collection of named 64-bit counters.
 *
 * Keys are created on first use; reading a missing key returns 0.
 */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at 0). */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, std::uint64_t value);

    /** @return value of counter @p name, 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** @return true when counter @p name exists. */
    bool has(const std::string &name) const;

    /** Merge another stat set into this one (counter-wise sum). */
    void merge(const StatSet &other);

    /** Drop all counters. */
    void clear();

    /** @return number of distinct counters. */
    std::size_t size() const { return counters.size(); }

    /** @return all counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters;
    }

    /** Render as "name=value" lines for logs. */
    std::string toString() const;

  private:
    std::map<std::string, std::uint64_t> counters;
};

/**
 * A StatSet shared between threads.
 *
 * Pipeline workers (src/runtime) merge their per-frame StatSets into
 * one of these; the runner snapshots it after the stream drains.
 * Only aggregation is offered — fine-grained add() calls should go
 * to a thread-local StatSet first to keep the lock cold.
 */
class ConcurrentStatSet
{
  public:
    ConcurrentStatSet() = default;
    ConcurrentStatSet(const ConcurrentStatSet &) = delete;
    ConcurrentStatSet &operator=(const ConcurrentStatSet &) = delete;

    /** Merge @p delta (counter-wise sum) under the lock. */
    void merge(const StatSet &delta);

    /** Add @p delta to one counter under the lock. */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** @return a consistent copy of the aggregate. */
    StatSet snapshot() const;

    /** Drop all counters. */
    void clear();

  private:
    mutable std::mutex mu;
    StatSet aggregate;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample; 0 for an
 * empty sample. The single latency-percentile definition, shared by
 * RuntimeReport (per-run) and ServingReport (merged across shards)
 * so aggregate numbers stay comparable to per-shard ones.
 */
double percentileNearestRank(const std::vector<double> &sorted,
                             double q);

} // namespace hgpcn

#endif // HGPCN_COMMON_STATS_H
