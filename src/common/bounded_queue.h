/**
 * @file
 * Bounded multi-producer/multi-consumer queue with overload policy.
 *
 * The inter-stage channel of the streaming runtime (docs/RUNTIME.md):
 * a fixed-capacity FIFO whose behavior when full is configurable —
 * block the producer (back-pressure), evict the oldest element
 * (fresh data wins, the LiDAR driver default) or refuse the newest
 * (old work finishes first). close() releases every blocked producer
 * and consumer so a pipeline can shut down with items in flight.
 */

#ifndef HGPCN_COMMON_BOUNDED_QUEUE_H
#define HGPCN_COMMON_BOUNDED_QUEUE_H

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/overload_policy.h"
#include "obs/trace.h"

namespace hgpcn
{

/**
 * A mutex-and-condvar MPMC FIFO with a hard capacity.
 *
 * All operations are thread-safe. Elements only need to be movable,
 * so move-only payloads (e.g. std::unique_ptr) work.
 */
template <typename T>
class BoundedQueue
{
  public:
    /**
     * Occupancy and traffic counters (monotonic, except size).
     *
     * Invariants (see test_common):
     *  - pushed == popped + size(): every admitted element is
     *    either consumed or still queued;
     *  - blockedPushes <= pushed: only pushes that were eventually
     *    admitted count as blocked — a producer woken by close()
     *    counts under closedPushes instead, so shutdown is not
     *    misread as back-pressure;
     *  - droppedNewest + closedPushes == refused push() calls.
     */
    struct Counters
    {
        std::uint64_t pushed = 0;       //!< elements admitted
        std::uint64_t popped = 0;       //!< elements consumed
        std::uint64_t droppedOldest = 0;//!< evictions by DropOldest
        std::uint64_t droppedNewest = 0;//!< refusals by DropNewest
        std::uint64_t blockedPushes = 0;//!< admitted pushes that waited
        std::uint64_t closedPushes = 0; //!< pushes refused by close()
        std::size_t peakSize = 0;       //!< max occupancy observed
    };

    /**
     * @param capacity Maximum occupancy; must be >= 1.
     * @param policy Behavior when full.
     */
    explicit BoundedQueue(std::size_t capacity,
                          OverloadPolicy policy = OverloadPolicy::Block)
        : cap(capacity), overload(policy)
    {
        HGPCN_ASSERT(capacity >= 1, "queue capacity must be >= 1");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Attach a tracer that samples this queue's depth (a wall-clock
     * Counter track named "queue:<name>") after every push and pop.
     * Call before producers/consumers start; pass nullptr to detach.
     * Costs one enabled() check per operation when tracing is off.
     */
    void
    instrument(Tracer *tracer, std::string name)
    {
        std::lock_guard<std::mutex> lock(mu);
        trace = tracer;
        trace_name = std::move(name);
    }

    /**
     * Offer @p value under the configured overload policy.
     *
     * Block policy waits for space (or for close()); the drop
     * policies return immediately. The evicted element of
     * DropOldest is destroyed inside the call.
     */
    PushOutcome
    push(T value)
    {
        std::unique_lock<std::mutex> lock(mu);
        if (closed) {
            ++stats.closedPushes;
            return PushOutcome::Closed;
        }

        PushOutcome outcome = PushOutcome::Pushed;
        if (items.size() >= cap) {
            switch (overload) {
              case OverloadPolicy::Block:
                not_full.wait(lock, [this] {
                    return closed || items.size() < cap;
                });
                // The wake reason decides the counter: a close()
                // destroys the value without enqueueing it, which
                // is shutdown, not back-pressure.
                if (closed) {
                    ++stats.closedPushes;
                    return PushOutcome::Closed;
                }
                ++stats.blockedPushes;
                break;
              case OverloadPolicy::DropOldest:
                items.pop_front();
                ++stats.droppedOldest;
                outcome = PushOutcome::DroppedOldest;
                break;
              case OverloadPolicy::DropNewest:
                ++stats.droppedNewest;
                return PushOutcome::DroppedNewest;
            }
        }
        items.push_back(std::move(value));
        ++stats.pushed;
        stats.peakSize = std::max(stats.peakSize, items.size());
        const std::size_t depth = items.size();
        lock.unlock();
        not_empty.notify_one();
        sampleDepth(depth);
        return outcome;
    }

    /**
     * Take the front element, waiting for one to arrive.
     *
     * @return the element, or std::nullopt once the queue is closed
     * and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mu);
        not_empty.wait(lock,
                       [this] { return closed || !items.empty(); });
        if (items.empty())
            return std::nullopt; // closed and drained
        T value = std::move(items.front());
        items.pop_front();
        ++stats.popped;
        const std::size_t depth = items.size();
        lock.unlock();
        not_full.notify_one();
        sampleDepth(depth);
        return value;
    }

    /**
     * Close the queue: subsequent pushes are refused, blocked
     * producers and consumers wake up, remaining elements stay
     * poppable until drained.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            closed = true;
        }
        not_empty.notify_all();
        not_full.notify_all();
    }

    /** @return true once close() has been called. */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return closed;
    }

    /** @return current occupancy. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return items.size();
    }

    /** @return configured capacity. */
    std::size_t capacity() const { return cap; }

    /** @return configured overload policy. */
    OverloadPolicy policy() const { return overload; }

    /** @return a snapshot of the traffic counters. */
    Counters
    counters() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return stats;
    }

  private:
    /**
     * Record a depth observed while mu was held. Called *after*
     * unlocking so the tracer's string building and buffer lock
     * never extend the queue's critical section (the traced arm of
     * the overhead gate was paying queue contention, not recording
     * cost). Reading trace/trace_name unlocked is safe under the
     * instrument() contract: attach/detach only happens while
     * producers and consumers are quiescent.
     */
    void
    sampleDepth(std::size_t depth)
    {
#ifndef HGPCN_TRACING_DISABLED
        if (trace && trace->enabled()) {
            trace->counter(TraceClock::Wall, trace->wallNowSec(),
                           "depth", "queue:" + trace_name,
                           static_cast<double>(depth));
        }
#else
        (void)depth;
#endif
    }

    const std::size_t cap;
    const OverloadPolicy overload;

    mutable std::mutex mu;
    std::condition_variable not_empty;
    std::condition_variable not_full;
    std::deque<T> items;
    Counters stats;
    bool closed = false;
    Tracer *trace = nullptr; //!< optional depth sampling (see instrument())
    std::string trace_name;
};

} // namespace hgpcn

#endif // HGPCN_COMMON_BOUNDED_QUEUE_H
