/**
 * @file
 * Wall-clock measurement helper for software-baseline experiments
 * (e.g. the measured OIS-vs-FPS CPU latency of Fig. 10).
 */

#ifndef HGPCN_COMMON_TIMER_H
#define HGPCN_COMMON_TIMER_H

#include <chrono>

namespace hgpcn
{

/** Monotonic stopwatch. */
class WallTimer
{
  public:
    WallTimer() : start_time(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_time = Clock::now(); }

    /** @return seconds since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_time)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_time;
};

} // namespace hgpcn

#endif // HGPCN_COMMON_TIMER_H
