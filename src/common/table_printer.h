/**
 * @file
 * Fixed-width text table rendering for bench output.
 *
 * Every bench binary reports its paper table/figure as an aligned text
 * table so the "rows/series the paper reports" are directly readable
 * from stdout and greppable from bench_output.txt.
 */

#ifndef HGPCN_COMMON_TABLE_PRINTER_H
#define HGPCN_COMMON_TABLE_PRINTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace hgpcn
{

/**
 * Accumulates rows of string cells and renders an aligned table.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** @return the rendered table with a header separator line. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with @p digits significant decimals. */
    static std::string fmt(double value, int digits = 2);

    /** Format a ratio as "N.NNx". */
    static std::string fmtRatio(double value, int digits = 2);

    /** Format an integer with thousands separators. */
    static std::string fmtCount(std::uint64_t value);

    /** Format seconds with an auto-selected unit (ns/us/ms/s). */
    static std::string fmtTime(double seconds);

    /** Format bytes with an auto-selected unit (B/KiB/MiB/GiB). */
    static std::string fmtBytes(double bytes);

  private:
    std::vector<std::string> header_cells;
    std::vector<std::vector<std::string>> rows;
};

} // namespace hgpcn

#endif // HGPCN_COMMON_TABLE_PRINTER_H
