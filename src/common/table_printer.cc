#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace hgpcn
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : header_cells(std::move(headers))
{
    HGPCN_ASSERT(!header_cells.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    HGPCN_ASSERT(cells.size() == header_cells.size(),
                 "row width ", cells.size(), " != header width ",
                 header_cells.size());
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(header_cells.size());
    for (std::size_t c = 0; c < header_cells.size(); ++c)
        widths[c] = header_cells[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &oss,
                        const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            oss << "| " << cells[c]
                << std::string(widths[c] - cells[c].size() + 1, ' ');
        }
        oss << "|\n";
    };

    std::ostringstream oss;
    emit_row(oss, header_cells);
    for (std::size_t c = 0; c < widths.size(); ++c)
        oss << "|" << std::string(widths[c] + 2, '-');
    oss << "|\n";
    for (const auto &row : rows)
        emit_row(oss, row);
    return oss.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
TablePrinter::fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TablePrinter::fmtRatio(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", digits, value);
    return buf;
}

std::string
TablePrinter::fmtCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int run = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (run == 3) {
            out.push_back(',');
            run = 0;
        }
        out.push_back(*it);
        ++run;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
TablePrinter::fmtTime(double seconds)
{
    char buf[64];
    if (seconds < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
    else if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    return buf;
}

std::string
TablePrinter::fmtBytes(double bytes)
{
    char buf[64];
    if (bytes < 1024.0)
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    else if (bytes < 1024.0 * 1024.0)
        std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024.0);
    else if (bytes < 1024.0 * 1024.0 * 1024.0)
        std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
    else
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      bytes / (1024.0 * 1024.0 * 1024.0));
    return buf;
}

} // namespace hgpcn
