/**
 * @file
 * Overload semantics shared by the real bounded queue
 * (common/bounded_queue.h) and the virtual-time scheduler
 * (runtime/virtual_timeline.h): what a full queue does with an
 * incoming element. Lives apart from the queue so the pure
 * arithmetic of the timeline does not depend on the threading
 * machinery.
 */

#ifndef HGPCN_COMMON_OVERLOAD_POLICY_H
#define HGPCN_COMMON_OVERLOAD_POLICY_H

namespace hgpcn
{

/** What a full queue does with an incoming element. */
enum class OverloadPolicy
{
    Block,      //!< producer waits for space (back-pressure)
    DropOldest, //!< evict the front, admit the newcomer
    DropNewest, //!< refuse the newcomer
};

/** @return human-readable policy name. */
inline const char *
overloadPolicyName(OverloadPolicy policy)
{
    switch (policy) {
      case OverloadPolicy::Block:
        return "block";
      case OverloadPolicy::DropOldest:
        return "drop-oldest";
      case OverloadPolicy::DropNewest:
        return "drop-newest";
    }
    return "?";
}

/** Result of one push() call. */
enum class PushOutcome
{
    Pushed,       //!< element admitted, nothing lost
    DroppedOldest,//!< element admitted, front element evicted
    DroppedNewest,//!< element refused
    Closed,       //!< queue closed, element refused
};

} // namespace hgpcn

#endif // HGPCN_COMMON_OVERLOAD_POLICY_H
