/**
 * @file
 * Blocked parallel-for over an index range.
 *
 * Intra-frame parallelism for the MLP kernels: rows of a GEMM are
 * independent, so splitting the row range across threads changes
 * nothing numerically — each output element is still accumulated in
 * the same order by exactly one thread. Threads are spawned per
 * call, which only pays off for chunky bodies (>= ~1 ms); callers
 * gate on work size. threads <= 1 (or a range smaller than the
 * thread count) degrades to a plain serial loop with zero overhead.
 */

#ifndef HGPCN_COMMON_PARALLEL_FOR_H
#define HGPCN_COMMON_PARALLEL_FOR_H

#include <cstddef>
#include <thread>
#include <vector>

namespace hgpcn
{

/**
 * Run fn(begin, end) over [0, n) split into @p threads contiguous
 * blocks. fn must be thread-safe across disjoint ranges. The calling
 * thread executes the first block.
 */
template <class Fn>
void
parallelFor(std::size_t n, int threads, const Fn &fn)
{
    if (threads <= 1 || n < static_cast<std::size_t>(threads) * 2) {
        if (n > 0)
            fn(std::size_t{0}, n);
        return;
    }
    const std::size_t t = static_cast<std::size_t>(threads);
    const std::size_t chunk = (n + t - 1) / t;
    std::vector<std::thread> pool;
    pool.reserve(t - 1);
    for (std::size_t w = 1; w < t; ++w) {
        const std::size_t begin = w * chunk;
        if (begin >= n)
            break;
        const std::size_t end = begin + chunk < n ? begin + chunk : n;
        pool.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    fn(std::size_t{0}, chunk < n ? chunk : n);
    for (std::thread &th : pool)
        th.join();
}

} // namespace hgpcn

#endif // HGPCN_COMMON_PARALLEL_FOR_H
