/**
 * @file
 * The Section VII-E real-time verdict, shared by every report that
 * states it (core/StreamReport, runtime/RuntimeReport,
 * serving/ServingReport).
 *
 * The criterion is "sustained processing rate >= sensor generation
 * rate". A run with no derivable generation rate — batch admission,
 * an unstamped stream, fewer than two frames — has no criterion to
 * meet, so the verdict is *not applicable* rather than a vacuous
 * YES: half the benches run batch mode, and a flagship number that
 * is trivially true there is worse than no number at all.
 */

#ifndef HGPCN_COMMON_REAL_TIME_H
#define HGPCN_COMMON_REAL_TIME_H

namespace hgpcn
{

/** Tri-state Section VII-E verdict. */
enum class RealTimeVerdict
{
    NotApplicable, //!< no generation rate derivable (batch/unstamped)
    Yes,           //!< sustained rate meets the sensor rate
    No,            //!< sustained rate falls behind the sensor rate
};

/**
 * Evaluate the criterion.
 *
 * @param sustained_fps Achieved processing rate.
 * @param generation_fps Sensor rate; <= 0 means "no rate derivable"
 *        (pass 0 for unpaced runs even when the stream is stamped —
 *        a batch run races no sensor).
 */
inline RealTimeVerdict
evaluateRealTime(double sustained_fps, double generation_fps)
{
    if (generation_fps <= 0.0)
        return RealTimeVerdict::NotApplicable;
    return sustained_fps >= generation_fps ? RealTimeVerdict::Yes
                                           : RealTimeVerdict::No;
}

/** @return "YES", "NO" or "n/a" for reports. */
inline const char *
realTimeVerdictName(RealTimeVerdict verdict)
{
    switch (verdict) {
      case RealTimeVerdict::NotApplicable:
        return "n/a";
      case RealTimeVerdict::Yes:
        return "YES";
      case RealTimeVerdict::No:
        return "NO";
    }
    return "?";
}

} // namespace hgpcn

#endif // HGPCN_COMMON_REAL_TIME_H
