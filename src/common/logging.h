/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration or arguments; exits with status 1), panic() is for
 * internal invariant violations (aborts), warn()/inform() report
 * conditions without stopping execution.
 */

#ifndef HGPCN_COMMON_LOGGING_H
#define HGPCN_COMMON_LOGGING_H

#include <functional>
#include <sstream>
#include <string>

namespace hgpcn
{

/** Severity of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/** Printable name of @p level ("inform", "warn", ...). */
const char *logLevelName(LogLevel level);

/**
 * Destination of formatted log messages. The default sink writes
 * "level: msg" lines — Inform to stdout, everything else to stderr.
 * Tests install a capturing sink to assert on warnings instead of
 * globally silencing them.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install @p sink as the log destination and return the previous
 * one (empty = the built-in default, and passing an empty sink
 * restores that default). The sink is called for every level,
 * including Fatal/Panic just before exit(1)/abort(). Delivery is
 * serialized under an internal mutex.
 */
LogSink setLogSink(LogSink sink);

/**
 * Emit a formatted log message.
 *
 * @param level Message severity; Fatal exits(1), Panic aborts.
 * @param msg Fully formatted message body.
 */
[[noreturn]] void logFatal(const std::string &msg);
[[noreturn]] void logPanic(const std::string &msg);
void logWarn(const std::string &msg);
void logInform(const std::string &msg);

/** Drop Inform/Warn messages before they reach the sink (legacy
 *  blanket switch; prefer a capturing sink in new tests). */
void setLogQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool logQuiet();

namespace detail
{

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user-facing error and exit(1).
 * Use for invalid configuration or arguments.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logFatal(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation and abort().
 * Use only for conditions that indicate a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logPanic(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    logWarn(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    logInform(detail::concat(std::forward<Args>(args)...));
}

/** panic() when @p cond does not hold. */
#define HGPCN_ASSERT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::hgpcn::panic("assertion failed: ", #cond, " ",               \
                           ::hgpcn::detail::concat(__VA_ARGS__));          \
        }                                                                  \
    } while (0)

} // namespace hgpcn

#endif // HGPCN_COMMON_LOGGING_H
