#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace hgpcn
{

namespace
{
bool quiet_flag = false;
} // namespace

void
setLogQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
logQuiet()
{
    return quiet_flag;
}

void
logFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
logPanic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
logWarn(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
logInform(const std::string &msg)
{
    if (!quiet_flag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace hgpcn
