#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace hgpcn
{

namespace
{

bool quiet_flag = false;

/** Built-in destination: "level: msg" lines, Inform to stdout,
 *  everything else to stderr. */
void
defaultSink(LogLevel level, const std::string &msg)
{
    std::FILE *dst = level == LogLevel::Inform ? stdout : stderr;
    std::fprintf(dst, "%s: %s\n", logLevelName(level), msg.c_str());
}

std::mutex sink_mu;
LogSink user_sink; //!< empty = defaultSink

/** Route one message through the installed sink. Cold path: the
 *  mutex serializes delivery so a capturing sink needs no locking
 *  of its own. */
void
deliver(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sink_mu);
    if (user_sink)
        user_sink(level, msg);
    else
        defaultSink(level, msg);
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Panic:
        return "panic";
    }
    return "unknown";
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sink_mu);
    LogSink prev = std::move(user_sink);
    user_sink = std::move(sink);
    return prev;
}

void
setLogQuiet(bool quiet)
{
    quiet_flag = quiet;
}

bool
logQuiet()
{
    return quiet_flag;
}

void
logFatal(const std::string &msg)
{
    deliver(LogLevel::Fatal, msg);
    std::exit(1);
}

void
logPanic(const std::string &msg)
{
    deliver(LogLevel::Panic, msg);
    std::abort();
}

void
logWarn(const std::string &msg)
{
    if (!quiet_flag)
        deliver(LogLevel::Warn, msg);
}

void
logInform(const std::string &msg)
{
    if (!quiet_flag)
        deliver(LogLevel::Inform, msg);
}

} // namespace hgpcn
