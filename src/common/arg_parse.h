/**
 * @file
 * Command-line argument parsing shared by the example and bench
 * drivers (examples/example_util.h and bench/bench_util.h re-export
 * it under their namespaces).
 */

#ifndef HGPCN_COMMON_ARG_PARSE_H
#define HGPCN_COMMON_ARG_PARSE_H

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace hgpcn
{

/**
 * Parse command-line argument @p index as a strictly positive
 * count, or return @p fallback when absent.
 *
 * Replaces the old unchecked std::atoi pattern, where "-3" or
 * "bogus" silently became a size_t wraparound or zero: any
 * non-numeric, negative, zero or out-of-range value is a user
 * error reported through fatal().
 *
 * @param argc/argv main()'s arguments.
 * @param index Position of the argument (1-based, as in argv).
 * @param fallback Value when fewer than @p index args were given.
 * @param what Argument name for the error message.
 */
inline std::size_t
parsePositiveArg(int argc, char **argv, int index,
                 std::size_t fallback, const char *what)
{
    if (argc <= index)
        return fallback;
    const char *text = argv[index];
    // strtoull itself skips whitespace and accepts a sign (negatives
    // wrap), so require the token to start with a digit outright.
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        fatal(what, " must be a positive integer, got '", text, "'");
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value == 0)
        fatal(what, " must be a positive integer, got '", text, "'");
    return static_cast<std::size_t>(value);
}

} // namespace hgpcn

#endif // HGPCN_COMMON_ARG_PARSE_H
