/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the library (dataset synthesis, random
 * sampling, random weights) draws from this generator so that runs are
 * bit-reproducible given a seed. The implementation is xoshiro256**,
 * seeded through SplitMix64 as recommended by its authors.
 */

#ifndef HGPCN_COMMON_RNG_H
#define HGPCN_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace hgpcn
{

/**
 * Small, fast, deterministic random number generator (xoshiro256**).
 *
 * Satisfies the UniformRandomBitGenerator concept so it can be used
 * with <random> distributions, though the member helpers below are
 * preferred for reproducibility across standard libraries.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        reseed(seed);
    }

    /** Re-seed the generator deterministically. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** @return next raw 64-bit draw. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** @return uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** @return uniform integer in [0, n); n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire-style rejection-free bounded draw (slight bias is
        // irrelevant for n << 2^64 workload synthesis).
        return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
    }

    /** @return standard normal draw (Box-Muller, deterministic). */
    double
    normal()
    {
        if (have_cached) {
            have_cached = false;
            return cached;
        }
        double u1 = 0.0;
        do {
            u1 = uniform();
        } while (u1 <= 1e-300);
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * 3.14159265358979323846 * u2;
        cached = r * std::sin(theta);
        have_cached = true;
        return r * std::cos(theta);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4] = {};
    double cached = 0.0;
    bool have_cached = false;
};

} // namespace hgpcn

#endif // HGPCN_COMMON_RNG_H
