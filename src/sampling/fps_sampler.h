/**
 * @file
 * Common farthest-point sampling (paper Fig. 6, Algorithm 1).
 *
 * The baseline the paper attacks: each of the K iterations scans every
 * point of the raw cloud, reading coordinates and the per-point
 * minimum-distance array from memory. The accounting here exposes why
 * the method is memory-bound — over 99% of the reads never contribute
 * a sampled point (Section II-A).
 */

#ifndef HGPCN_SAMPLING_FPS_SAMPLER_H
#define HGPCN_SAMPLING_FPS_SAMPLER_H

#include "common/rng.h"
#include "sampling/sampler.h"

namespace hgpcn
{

class FrameWorkspace;

/**
 * Exact farthest-point sampling with per-point cached minimum
 * distances (the strongest software formulation of Algorithm 1).
 */
class FpsSampler : public Sampler
{
  public:
    /** @param seed RNG seed for the initial point pick. */
    explicit FpsSampler(std::uint64_t seed = 1) : rng_seed(seed) {}

    SampleResult sample(const PointCloud &cloud, std::size_t k) override;

    /**
     * sample() with the per-point minimum-distance array taken from
     * @p workspace (core/frame_workspace.h) instead of a per-call
     * allocation. Identical picks and counters.
     */
    SampleResult sample(const PointCloud &cloud, std::size_t k,
                        FrameWorkspace *workspace);

    std::string name() const override { return "FPS"; }

    /**
     * Closed-form workload prediction for an (n, k) FPS run, used by
     * benches where actually executing the O(n*k) scan on
     * million-point frames would be prohibitive. All counters except
     * the data-dependent distance-array update count are exact; the
     * update count uses its expectation n*(1 + ln k) (each point's
     * minimum falls O(log k) times over k rounds).
     */
    static StatSet predictStats(std::uint64_t n, std::uint64_t k);

  private:
    std::uint64_t rng_seed;
};

/**
 * Paper-literal Algorithm 1: every iteration recomputes the distance
 * from each unpicked point to the entire picked set S, writes all
 * distances to memory and reads them back for the ranking ("all of
 * the computed distances (intermediate data) are written into the
 * memory, and then read again", Section III-A). O(N*K^2) work and
 * traffic — the baseline behind the paper's 800x-7500x measured
 * speedups (Fig. 10). Produces exactly the same picks as FpsSampler.
 */
class NaiveFpsSampler : public Sampler
{
  public:
    /** @param seed RNG seed for the initial point pick. */
    explicit NaiveFpsSampler(std::uint64_t seed = 1) : rng_seed(seed)
    {}

    SampleResult sample(const PointCloud &cloud, std::size_t k) override;

    std::string name() const override { return "FPS-naive"; }

  private:
    std::uint64_t rng_seed;
};

} // namespace hgpcn

#endif // HGPCN_SAMPLING_FPS_SAMPLER_H
