/**
 * @file
 * Approximate OIS-based FPS (paper Section VIII, future directions).
 *
 * "Instead of finding the accurate farthest point, we can randomly
 * pick a point contained by the current accessed node once the Octree
 * search is near leaf level. Because the randomly picked point
 * belongs to the same node as the actual farthest point, it is
 * spatially adjacent to [it] and can serve as an approximate
 * substitute."
 *
 * The descent stops as soon as the current node holds at most
 * Config::stopCount live points; one of them is picked uniformly.
 * This trades descent levels (and intra-leaf compares) for a bounded
 * spatial error of one stop-node diagonal.
 */

#ifndef HGPCN_SAMPLING_APPROX_OIS_SAMPLER_H
#define HGPCN_SAMPLING_APPROX_OIS_SAMPLER_H

#include "common/rng.h"
#include "octree/octree.h"
#include "sampling/sampler.h"

namespace hgpcn
{

/** Approximate OIS-based farthest-point sampling. */
class ApproxOisSampler : public Sampler
{
  public:
    /** Sampler parameters. */
    struct Config
    {
        /** Octree build parameters. */
        Octree::Config octree;
        /** Farthest-voxel scoring rule (see DescentMetric). */
        DescentMetric metric = DescentMetric::Balanced;
        /** Stop descending once a node holds at most this many
         * live points, then pick one of them at random. */
        std::uint32_t stopCount = 32;
        /** RNG seed. */
        std::uint64_t seed = 1;
    };

    /** Create with default configuration. */
    ApproxOisSampler() = default;

    explicit ApproxOisSampler(const Config &config) : cfg(config) {}

    SampleResult sample(const PointCloud &cloud, std::size_t k) override;

    /** Sample over a pre-built octree (resets its live state). */
    SampleResult sampleWithTree(Octree &tree, std::size_t k) const;

    std::string name() const override { return "OIS-approx"; }

    /** @return configured parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg{};
};

} // namespace hgpcn

#endif // HGPCN_SAMPLING_APPROX_OIS_SAMPLER_H
