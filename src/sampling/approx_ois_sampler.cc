#include "sampling/approx_ois_sampler.h"

#include <bit>

#include "common/logging.h"

namespace hgpcn
{

namespace
{

/** Pick the @p ordinal-th live point in the node's range. */
PointIndex
pickLiveInNode(const Octree &tree, NodeIndex n, std::uint64_t ordinal)
{
    const OctreeNode &node = tree.node(n);
    std::uint64_t seen = 0;
    for (PointIndex i = node.pointBegin; i < node.pointEnd; ++i) {
        if (!tree.isLive(i))
            continue;
        if (seen == ordinal)
            return i;
        ++seen;
    }
    panic("node ", n, " ran out of live points");
}

} // namespace

SampleResult
ApproxOisSampler::sample(const PointCloud &cloud, std::size_t k)
{
    Octree tree = Octree::build(cloud, cfg.octree);
    SampleResult result = sampleWithTree(tree, k);
    result.stats.merge(tree.buildStats());
    return result;
}

SampleResult
ApproxOisSampler::sampleWithTree(Octree &tree, std::size_t k) const
{
    const std::size_t n = tree.pointCodes().size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    tree.resetLive();
    const PointCloud &reordered = tree.reorderedCloud();
    const std::vector<PointIndex> &perm = tree.permutation();

    SampleResult result;
    result.indices.reserve(k);
    result.spt.reserve(k);

    std::uint64_t host_reads = 0;
    std::uint64_t table_lookups = 0;
    std::uint64_t levels_total = 0;

    Rng rng(cfg.seed);

    auto record_pick = [&](PointIndex reordered_idx) {
        tree.consumePoint(reordered_idx);
        result.spt.push_back(reordered_idx);
        result.indices.push_back(perm[reordered_idx]);
        ++host_reads;
    };

    const PointIndex seed_idx = static_cast<PointIndex>(rng.below(n));
    record_pick(seed_idx);
    Vec3 sum = reordered.position(seed_idx);

    for (std::size_t pick = 1; pick < k; ++pick) {
        const Vec3 summary = sum / static_cast<float>(pick);
        const morton::Code seed_code = morton::pointCode3(
            summary, tree.rootBounds(), tree.config().maxDepth);

        int levels = 0;
        const NodeIndex stop = tree.descendFarthest(
            seed_code, cfg.metric, cfg.stopCount, &levels);
        HGPCN_ASSERT(stop != kNoNode, "octree exhausted early");
        levels_total += static_cast<std::uint64_t>(levels);
        table_lookups += static_cast<std::uint64_t>(levels) * 8;

        const std::uint64_t ordinal = rng.below(tree.liveCount(stop));
        const PointIndex chosen = pickLiveInNode(tree, stop, ordinal);
        record_pick(chosen);
        sum += reordered.position(chosen);
    }

    result.stats.set("sample.host_reads", host_reads);
    result.stats.set("sample.host_writes", k);
    result.stats.set("sample.table_lookups", table_lookups);
    result.stats.set("sample.levels_visited", levels_total);
    return result;
}

} // namespace hgpcn
