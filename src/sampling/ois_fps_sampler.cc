#include "sampling/ois_fps_sampler.h"

#include "common/logging.h"

namespace hgpcn
{

SampleResult
OisFpsSampler::sample(const PointCloud &cloud, std::size_t k)
{
    Octree tree = Octree::build(cloud, cfg.octree);
    SampleResult result = sampleWithTree(tree, k);
    result.stats.merge(tree.buildStats());
    return result;
}

SampleResult
OisFpsSampler::sampleWithTree(Octree &tree, std::size_t k) const
{
    const std::size_t n = tree.pointCodes().size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    tree.resetLive();
    const PointCloud &reordered = tree.reorderedCloud();
    const std::vector<PointIndex> &perm = tree.permutation();

    SampleResult result;
    result.indices.reserve(k);
    result.spt.reserve(k);

    std::uint64_t host_reads = 0;
    std::uint64_t spt_writes = 0;
    std::uint64_t table_lookups = 0;
    std::uint64_t levels_total = 0;
    std::uint64_t leaf_candidates = 0;

    auto record_pick = [&](PointIndex reordered_idx) {
        tree.consumePoint(reordered_idx);
        result.spt.push_back(reordered_idx);
        result.indices.push_back(perm[reordered_idx]);
        ++spt_writes;
        // One host-memory access fetches the picked point through its
        // SPT address.
        ++host_reads;
    };

    // Seed: a random live point (as in standard FPS).
    Rng rng(cfg.seed);
    const PointIndex seed_idx = static_cast<PointIndex>(rng.below(n));
    record_pick(seed_idx);

    // Running coordinate sum for the ||S||2 virtual summary point.
    Vec3 sum = reordered.position(seed_idx);

    for (std::size_t pick = 1; pick < k; ++pick) {
        const Vec3 summary = sum / static_cast<float>(pick);
        const morton::Code seed_code = morton::pointCode3(
            summary, tree.rootBounds(), tree.config().maxDepth);

        int levels = 0;
        const NodeIndex leaf =
            tree.descendFarthest(seed_code, cfg.metric, 0, &levels);
        HGPCN_ASSERT(leaf != kNoNode, "octree exhausted early");
        levels_total += static_cast<std::uint64_t>(levels);
        // Each level compares up to eight sibling m-codes in the
        // table (the eight parallel Sampling Modules of Fig. 7).
        table_lookups += static_cast<std::uint64_t>(levels) * 8;

        const PointIndex chosen =
            tree.farthestLivePointInLeaf(leaf, seed_code);
        leaf_candidates += tree.node(leaf).count();
        record_pick(chosen);
        sum += reordered.position(chosen);
    }

    result.stats.set("sample.host_reads", host_reads);
    result.stats.set("sample.host_writes", spt_writes);
    result.stats.set("sample.table_lookups", table_lookups);
    result.stats.set("sample.levels_visited", levels_total);
    result.stats.set("sample.leaf_candidates", leaf_candidates);
    return result;
}

} // namespace hgpcn
