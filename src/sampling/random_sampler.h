/**
 * @file
 * Random down-sampling (RS) and its reinforced variant.
 *
 * RS is the only traditional method fast enough for real time on
 * general-purpose hardware, at the price of unreliable accuracy
 * (Section II-A). RandLA-Net-style pipelines bolt a learned encoder
 * onto RS to win some robustness back ("RS+reinforce" in Fig. 12); we
 * model that encoder as a fixed per-point MAC cost since only its
 * latency enters the paper's comparison.
 */

#ifndef HGPCN_SAMPLING_RANDOM_SAMPLER_H
#define HGPCN_SAMPLING_RANDOM_SAMPLER_H

#include "common/rng.h"
#include "sampling/sampler.h"

namespace hgpcn
{

/** Uniform random down-sampling without replacement. */
class RandomSampler : public Sampler
{
  public:
    explicit RandomSampler(std::uint64_t seed = 1) : rng_seed(seed) {}

    SampleResult sample(const PointCloud &cloud, std::size_t k) override;

    std::string name() const override { return "RS"; }

  private:
    std::uint64_t rng_seed;
};

/**
 * Random sampling followed by a reinforcement encoder pass
 * (RandLA-Net [10] style). The encoder itself is not reproduced —
 * only its workload: kEncoderMacsPerPoint MACs for every raw point,
 * reported as "sample.encoder_macs" for the device models.
 */
class ReinforcedRandomSampler : public Sampler
{
  public:
    /** Per-raw-point MAC cost of the reinforcement encoder. */
    static constexpr std::uint64_t kEncoderMacsPerPoint = 64;

    explicit ReinforcedRandomSampler(std::uint64_t seed = 1)
        : inner(seed)
    {}

    SampleResult sample(const PointCloud &cloud, std::size_t k) override;

    std::string name() const override { return "RS+reinforce"; }

  private:
    RandomSampler inner;
};

} // namespace hgpcn

#endif // HGPCN_SAMPLING_RANDOM_SAMPLER_H
