#include "sampling/fps_sampler.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/frame_workspace.h"

namespace hgpcn
{

StatSet
FpsSampler::predictStats(std::uint64_t n, std::uint64_t k)
{
    StatSet stats;
    stats.set("sample.host_reads", 1 + (k - 1) * n);
    stats.set("sample.intermediate_reads", (k - 1) * n);
    const double updates =
        static_cast<double>(n) *
        (1.0 + std::log(static_cast<double>(k > 1 ? k : 2)));
    stats.set("sample.intermediate_writes",
              static_cast<std::uint64_t>(updates) + k);
    stats.set("sample.distance_computations", (k - 1) * n);
    return stats;
}

SampleResult
FpsSampler::sample(const PointCloud &cloud, std::size_t k)
{
    return sample(cloud, k, nullptr);
}

SampleResult
FpsSampler::sample(const PointCloud &cloud, std::size_t k,
                   FrameWorkspace *workspace)
{
    const std::size_t n = cloud.size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    SampleResult result;
    result.indices.reserve(k);

    // Initialize the per-point minimum-distance array (intermediate
    // data written to memory, re-read every iteration).
    std::vector<float> own_min_dist;
    std::vector<float> &min_dist =
        workspace != nullptr ? workspace->sampling.minDist
                             : own_min_dist;
    if (workspace != nullptr)
        workspace->ensure(min_dist, n);
    min_dist.assign(n, std::numeric_limits<float>::max());

    // Workload counters, accumulated locally so the accounting does
    // not distort wall-clock measurements of the algorithm itself.
    std::uint64_t host_reads = 1; // seed point
    std::uint64_t inter_reads = 0;
    std::uint64_t inter_writes = n; // min_dist initialization
    std::uint64_t dist_computes = 0;

    Rng rng(rng_seed);
    PointIndex last = static_cast<PointIndex>(rng.below(n));
    result.indices.push_back(last);

    const Vec3 *pos = cloud.positions().data();
    for (std::size_t pick = 1; pick < k; ++pick) {
        const Vec3 anchor = pos[last];
        PointIndex best = 0;
        float best_dist = -1.0f;
        for (std::size_t i = 0; i < n; ++i) {
            // Read the candidate point and its cached distance.
            const float d = pos[i].distSq(anchor);
            if (d < min_dist[i]) {
                min_dist[i] = d;
                ++inter_writes;
            }
            if (min_dist[i] > best_dist) {
                best_dist = min_dist[i];
                best = static_cast<PointIndex>(i);
            }
        }
        host_reads += n;
        inter_reads += n;
        dist_computes += n;
        last = best;
        min_dist[best] = -2.0f; // never picked again
        ++inter_writes;
        result.indices.push_back(last);
    }

    result.stats.set("sample.host_reads", host_reads);
    result.stats.set("sample.intermediate_reads", inter_reads);
    result.stats.set("sample.intermediate_writes", inter_writes);
    result.stats.set("sample.distance_computations", dist_computes);
    return result;
}

SampleResult
NaiveFpsSampler::sample(const PointCloud &cloud, std::size_t k)
{
    const std::size_t n = cloud.size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    SampleResult result;
    result.indices.reserve(k);

    std::vector<float> dist(n);
    std::vector<std::uint8_t> picked(n, 0);

    std::uint64_t host_reads = 1;
    std::uint64_t inter_reads = 0;
    std::uint64_t inter_writes = 0;
    std::uint64_t dist_computes = 0;

    Rng rng(rng_seed);
    const PointIndex seed = static_cast<PointIndex>(rng.below(n));
    result.indices.push_back(seed);
    picked[seed] = 1;

    const Vec3 *pos = cloud.positions().data();
    for (std::size_t pick = 1; pick < k; ++pick) {
        // Recompute min-distance-to-S for every point, writing the
        // whole distance array back to memory.
        for (std::size_t i = 0; i < n; ++i) {
            float best = std::numeric_limits<float>::max();
            for (const PointIndex s : result.indices) {
                const float d = pos[i].distSq(pos[s]);
                if (d < best)
                    best = d;
            }
            dist[i] = best;
        }
        host_reads += n * result.indices.size();
        dist_computes += n * result.indices.size();
        inter_writes += n;

        // Read the array back and rank for the farthest point.
        PointIndex best_idx = 0;
        float best_dist = -1.0f;
        for (std::size_t i = 0; i < n; ++i) {
            if (!picked[i] && dist[i] > best_dist) {
                best_dist = dist[i];
                best_idx = static_cast<PointIndex>(i);
            }
        }
        inter_reads += n;

        picked[best_idx] = 1;
        result.indices.push_back(best_idx);
    }

    result.stats.set("sample.host_reads", host_reads);
    result.stats.set("sample.intermediate_reads", inter_reads);
    result.stats.set("sample.intermediate_writes", inter_writes);
    result.stats.set("sample.distance_computations", dist_computes);
    return result;
}

} // namespace hgpcn
