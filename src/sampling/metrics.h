/**
 * @file
 * Sampling-quality metrics.
 *
 * The paper orders methods by information loss: FPS least, RS most,
 * with OIS matching FPS ("it can achieve the same accuracy as the FPS
 * method", Section VII-C). These geometric metrics let tests and
 * ablations quantify that ordering without trained networks: a
 * sample that covers the cloud tightly (small coverage radius) loses
 * the least spatial information.
 */

#ifndef HGPCN_SAMPLING_METRICS_H
#define HGPCN_SAMPLING_METRICS_H

#include <span>

#include "geometry/point_cloud.h"

namespace hgpcn
{

/**
 * Coverage radius: the largest distance from any cloud point to its
 * nearest sampled point (directed Hausdorff distance cloud→sample).
 * FPS greedily minimises this quantity.
 */
double coverageRadius(const PointCloud &cloud,
                      std::span<const PointIndex> sample);

/** Mean distance from cloud points to their nearest sampled point. */
double meanNearestSampleDistance(const PointCloud &cloud,
                                 std::span<const PointIndex> sample);

/**
 * Minimum pairwise distance within the sample. FPS keeps samples
 * spread out, so a higher value indicates FPS-like behaviour.
 */
double minSampleSpacing(const PointCloud &cloud,
                        std::span<const PointIndex> sample);

} // namespace hgpcn

#endif // HGPCN_SAMPLING_METRICS_H
