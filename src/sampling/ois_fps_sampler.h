/**
 * @file
 * Octree-Indexed-Sampling FPS (paper Fig. 6, Algorithm 2).
 *
 * The core pre-processing contribution of HgPCN. Instead of scanning
 * all raw points per pick, the sampler walks the Octree-Table: at
 * every level the live child whose m-code maximises the Hamming
 * distance to the seed voxel's code is selected (the Sampling
 * Modules' XOR+popcount of Fig. 7), so finding the next point costs
 * at most `depth` table lookups instead of N distance computations.
 * Host memory is touched exactly once per picked point, to read its
 * coordinates through the Sampled-Points-Table address.
 *
 * Following Section V-B, once the picked set S holds more than one
 * point the descent seed is the virtual summary point ||S||2,
 * implemented as the centroid of S.
 */

#ifndef HGPCN_SAMPLING_OIS_FPS_SAMPLER_H
#define HGPCN_SAMPLING_OIS_FPS_SAMPLER_H

#include "common/rng.h"
#include "octree/octree.h"
#include "sampling/sampler.h"

namespace hgpcn
{

/**
 * Exact OIS-based farthest-point sampling.
 */
class OisFpsSampler : public Sampler
{
  public:
    /** Sampler parameters. */
    struct Config
    {
        /** Octree build parameters (depth drives lookup cost). */
        Octree::Config octree;
        /** Farthest-voxel scoring rule (see DescentMetric). */
        DescentMetric metric = DescentMetric::Balanced;
        /** RNG seed for the initial point pick. */
        std::uint64_t seed = 1;
    };

    /** Create with default configuration. */
    OisFpsSampler() = default;

    explicit OisFpsSampler(const Config &config) : cfg(config) {}

    /**
     * Build the octree (accounted in the result's stats) and sample.
     * Indices in the result refer to @p cloud's original order; the
     * result's spt holds the reordered-memory addresses.
     */
    SampleResult sample(const PointCloud &cloud, std::size_t k) override;

    /**
     * Sample over an already-built octree (the HgPCN engine path,
     * where the Octree-build Unit ran on the CPU beforehand). Resets
     * and consumes @p tree's live-point state. Build stats are NOT
     * merged into the result.
     */
    SampleResult sampleWithTree(Octree &tree, std::size_t k) const;

    std::string name() const override { return "OIS"; }

    /** @return configured parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg{};
};

} // namespace hgpcn

#endif // HGPCN_SAMPLING_OIS_FPS_SAMPLER_H
