/**
 * @file
 * Down-sampling interface.
 *
 * Pre-processing decimates a raw frame of N (1e5..1e6+) points into a
 * fixed K (e.g. 4096) for the PCN input layer (Section II). Samplers
 * report their workload through StatSet counters; the counter names
 * below are shared across implementations so benches and simulators
 * can compare them directly.
 *
 * Common counters:
 *  - "sample.host_reads"          point reads from host memory
 *  - "sample.host_writes"         point/intermediate writes to host
 *  - "sample.intermediate_reads"  distance-array reads (FPS only)
 *  - "sample.intermediate_writes" distance-array writes (FPS only)
 *  - "sample.distance_computations"
 *  - "sample.table_lookups"       on-chip octree-table lookups (OIS)
 *  - "sample.levels_visited"      octree levels walked (OIS)
 */

#ifndef HGPCN_SAMPLING_SAMPLER_H
#define HGPCN_SAMPLING_SAMPLER_H

#include <string>
#include <vector>

#include "common/stats.h"
#include "geometry/point_cloud.h"

namespace hgpcn
{

/** Output of a down-sampling pass. */
struct SampleResult
{
    /** Selected points, as indices into the cloud that was sampled. */
    std::vector<PointIndex> indices;

    /**
     * Sampled-Points-Table: host-memory addresses (positions in the
     * SFC-reordered array) of the selected points. Only filled by
     * octree-indexed samplers; empty otherwise.
     */
    std::vector<PointIndex> spt;

    /** Workload accounting (see file comment for counter names). */
    StatSet stats;
};

/**
 * Abstract down-sampler: pick @p k points from a cloud.
 */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /**
     * Select @p k points of @p cloud.
     *
     * @param cloud Input frame; must contain at least @p k points.
     * @param k Number of points to keep.
     */
    virtual SampleResult sample(const PointCloud &cloud,
                                std::size_t k) = 0;

    /** @return short method name for reports ("FPS", "OIS", ...). */
    virtual std::string name() const = 0;
};

} // namespace hgpcn

#endif // HGPCN_SAMPLING_SAMPLER_H
