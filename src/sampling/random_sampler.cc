#include "sampling/random_sampler.h"

#include <numeric>

#include "common/logging.h"

namespace hgpcn
{

SampleResult
RandomSampler::sample(const PointCloud &cloud, std::size_t k)
{
    const std::size_t n = cloud.size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    SampleResult result;
    result.indices.resize(n);
    std::iota(result.indices.begin(), result.indices.end(), 0u);

    // Partial Fisher-Yates: the first k slots become the sample.
    Rng rng(rng_seed);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + rng.below(n - i);
        std::swap(result.indices[i], result.indices[j]);
    }
    result.indices.resize(k);

    result.stats.set("sample.host_reads", k);
    result.stats.set("sample.host_writes", k);
    return result;
}

SampleResult
ReinforcedRandomSampler::sample(const PointCloud &cloud, std::size_t k)
{
    SampleResult result = inner.sample(cloud, k);
    // The reinforcement encoder reads every raw point once and runs a
    // small per-point MLP.
    result.stats.add("sample.host_reads", cloud.size());
    result.stats.set("sample.encoder_macs",
                     cloud.size() * kEncoderMacsPerPoint);
    return result;
}

} // namespace hgpcn
