#include "sampling/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace hgpcn
{

namespace
{

float
nearestSampleDistSq(const PointCloud &cloud,
                    std::span<const PointIndex> sample, const Vec3 &p)
{
    float best = std::numeric_limits<float>::max();
    for (PointIndex s : sample)
        best = std::min(best, cloud.position(s).distSq(p));
    return best;
}

} // namespace

double
coverageRadius(const PointCloud &cloud,
               std::span<const PointIndex> sample)
{
    HGPCN_ASSERT(!sample.empty(), "empty sample");
    float worst = 0.0f;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        worst = std::max(
            worst, nearestSampleDistSq(
                       cloud, sample,
                       cloud.position(static_cast<PointIndex>(i))));
    }
    return std::sqrt(static_cast<double>(worst));
}

double
meanNearestSampleDistance(const PointCloud &cloud,
                          std::span<const PointIndex> sample)
{
    HGPCN_ASSERT(!sample.empty(), "empty sample");
    double total = 0.0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        total += std::sqrt(static_cast<double>(nearestSampleDistSq(
            cloud, sample, cloud.position(static_cast<PointIndex>(i)))));
    }
    return total / static_cast<double>(cloud.size());
}

double
minSampleSpacing(const PointCloud &cloud,
                 std::span<const PointIndex> sample)
{
    HGPCN_ASSERT(sample.size() >= 2, "need at least two samples");
    float best = std::numeric_limits<float>::max();
    for (std::size_t a = 0; a < sample.size(); ++a) {
        for (std::size_t b = a + 1; b < sample.size(); ++b) {
            best = std::min(best, cloud.position(sample[a])
                                      .distSq(cloud.position(sample[b])));
        }
    }
    return std::sqrt(static_cast<double>(best));
}

} // namespace hgpcn
