#include "runtime/stages.h"

namespace hgpcn
{

double
OctreeBuildStage::process(FrameTask &task) const
{
    task.result.preprocess = pre.buildStage(task.frame->cloud, carry);
    return task.result.preprocess.octreeBuildSec;
}

double
DownSampleStage::process(FrameTask &task) const
{
    pre.sampleStage(task.result.preprocess, k);
    // preprocess.stats is complete here (build + sampler counters);
    // merge the frame into the stream aggregate from this worker.
    if (workload != nullptr)
        workload->merge(task.result.preprocess.stats);
    return task.result.preprocess.dsu.totalSec();
}

double
InferenceStage::process(FrameTask &task) const
{
    // Same input conditioning as HgPcnSystem::processFrame: the
    // sampled cloud is normalized for the radius-based layers, so
    // the pre-processing octree (raw coordinates) is not reusable
    // and backends build their own structures, still costed in the
    // trace.
    PointCloud input = task.result.preprocess.sampled;
    input.normalizeToUnitCube();
    if (workspaces != nullptr) {
        // Lease a warm scratch arena for this frame; the pool keeps
        // it across frames and runs (zero-alloc steady state).
        WorkspacePool::Lease ws = workspaces->acquire();
        ws->intraOpThreads = intraOp;
        task.result.inference = be.infer(input, ws.get());
    } else {
        task.result.inference = be.infer(input);
    }
    return task.result.inference.totalSec();
}

} // namespace hgpcn
