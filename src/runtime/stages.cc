#include "runtime/stages.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace hgpcn
{
namespace
{

/**
 * Charge a frame's resolved fault directive against its solo
 * modeled inference seconds: every attempt re-occupies the device
 * for a full (slowed-down) service and the deterministic backoff is
 * device-idle-but-frame-blocked time, both charged to the frame's
 * inference span. Records the surcharge on the task (batched
 * execution folds it into the shared occupancy) and marks the
 * terminal failure on the inference status.
 */
double
chargeFault(FrameTask &task, double solo_sec)
{
    if (task.fault.clean())
        return solo_sec;
    const double charged = solo_sec * task.fault.slowdownMult *
                               static_cast<double>(
                                   task.fault.attempts) +
                           task.fault.backoffSec;
    task.faultExtraSec = charged - solo_sec;
    if (task.fault.failed)
        task.result.inference.status =
            InferenceStatus::TransientError;
    return charged;
}

} // namespace

double
OctreeBuildStage::process(FrameTask &task) const
{
    task.result.preprocess = pre.buildStage(task.frame->cloud, carry);
    return task.result.preprocess.octreeBuildSec;
}

double
DownSampleStage::process(FrameTask &task) const
{
    // Graceful degradation: a degraded frame keeps a reduced sample
    // budget — less work everywhere downstream, same code path.
    std::size_t k_eff = k;
    if (task.fault.samplePoints > 0 && task.fault.samplePoints < k)
        k_eff = task.fault.samplePoints;
    pre.sampleStage(task.result.preprocess, k_eff);
    // preprocess.stats is complete here (build + sampler counters);
    // merge the frame into the stream aggregate from this worker.
    if (workload != nullptr)
        workload->merge(task.result.preprocess.stats);
    return task.result.preprocess.dsu.totalSec();
}

double
InferenceStage::process(FrameTask &task) const
{
    // Same input conditioning as HgPcnSystem::processFrame: the
    // sampled cloud is normalized for the radius-based layers, so
    // the pre-processing octree (raw coordinates) is not reusable
    // and backends build their own structures, still costed in the
    // trace.
    PointCloud input = task.result.preprocess.sampled;
    input.normalizeToUnitCube();
    if (workspaces != nullptr) {
        // Lease a warm scratch arena for this frame; the pool keeps
        // it across frames and runs (zero-alloc steady state).
        WorkspacePool::Lease ws = workspaces->acquire();
        ws->intraOpThreads = intraOp;
        task.result.inference = be.infer(input, ws.get());
    } else {
        task.result.inference = be.infer(input);
    }
    return chargeFault(task, task.result.inference.totalSec());
}

void
InferenceStage::processBatch(std::span<FrameTask *const> tasks,
                             std::span<double> costs) const
{
    // Same conditioning as process(), for every member.
    std::vector<PointCloud> inputs;
    inputs.reserve(tasks.size());
    for (FrameTask *task : tasks) {
        inputs.push_back(task->result.preprocess.sampled);
        inputs.back().normalizeToUnitCube();
    }
    std::vector<const PointCloud *> ptrs;
    ptrs.reserve(inputs.size());
    for (const PointCloud &in : inputs)
        ptrs.push_back(&in);

    // ONE workspace lease serves the whole batch: the stacked
    // tensors reserve batch-sized arena slots once, then reuse them
    // every dispatch (zero-alloc steady state at batch granularity).
    BatchInference batch;
    if (workspaces != nullptr) {
        WorkspacePool::Lease ws = workspaces->acquire();
        ws->intraOpThreads = intraOp;
        batch = be.inferBatch(ptrs, ws.get());
    } else {
        batch = be.inferBatch(ptrs);
    }
    HGPCN_ASSERT(batch.frames.size() == tasks.size(),
                 "backend returned ", batch.frames.size(),
                 " inferences for ", tasks.size(), " frames");
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        tasks[i]->result.inference = std::move(batch.frames[i]);
        costs[i] = chargeFault(*tasks[i],
                               tasks[i]->result.inference.totalSec());
    }
}

} // namespace hgpcn
