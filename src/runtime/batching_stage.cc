#include "runtime/batching_stage.h"

#include "common/logging.h"

namespace hgpcn
{

BatchingStage::BatchingStage(std::size_t max_batch)
    : max_batch(max_batch)
{
    HGPCN_ASSERT(max_batch >= 1, "batching needs maxBatch >= 1");
}

std::vector<BatchingStage::Group>
BatchingStage::add(std::unique_ptr<FrameTask> task)
{
    HGPCN_ASSERT(task != nullptr, "null task");
    HGPCN_ASSERT(task->index >= next_base,
                 "task ", task->index, " re-added to a closed group");
    pending.emplace(task->index, std::move(task));

    std::vector<Group> complete;
    // One insert can complete several groups when it plugs the gap
    // in front of already-buffered later groups.
    while (true) {
        bool full = true;
        for (std::size_t i = next_base; i < next_base + max_batch; ++i) {
            if (pending.find(i) == pending.end()) {
                full = false;
                break;
            }
        }
        if (!full)
            break;
        Group group;
        group.reserve(max_batch);
        for (std::size_t i = next_base; i < next_base + max_batch; ++i) {
            auto it = pending.find(i);
            group.push_back(std::move(it->second));
            pending.erase(it);
        }
        next_base += max_batch;
        complete.push_back(std::move(group));
    }
    return complete;
}

std::vector<BatchingStage::Group>
BatchingStage::flush()
{
    std::vector<Group> groups;
    Group group;
    for (auto &[index, task] : pending) {
        if (!group.empty() &&
            (index >= next_base + max_batch || group.size() == max_batch)) {
            groups.push_back(std::move(group));
            group = Group{};
        }
        while (index >= next_base + max_batch)
            next_base += max_batch;
        group.push_back(std::move(task));
    }
    if (!group.empty())
        groups.push_back(std::move(group));
    pending.clear();
    return groups;
}

} // namespace hgpcn
