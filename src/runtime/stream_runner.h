/**
 * @file
 * StreamRunner: source-paced, multi-frame-in-flight E2E execution.
 *
 * The front door of the streaming runtime (docs/RUNTIME.md). A
 * runner owns the three stages — OctreeBuildStage (CPU),
 * DownSampleStage (FPGA) and a backend-parameterized InferenceStage
 * (src/backends) — admits a frame stream at the sensor rate,
 * executes the functional work on a real concurrent StagePipeline,
 * schedules the recorded cycle-model costs on the virtual timeline
 * and reports sustained throughput, tail latency, per-stage
 * occupancy/utilization, drops and the Section VII-E real-time
 * verdict. This RuntimeReport supersedes StreamReport's
 * single-number pipelinedFps estimate; HgPcnSystem::processStream
 * remains as a compatibility wrapper over a single-worker runner.
 *
 * Device mapping: a backend on the HgPCN fabric (resource "fpga",
 * i.e. HgpcnBackend) follows the shareFpga semantics — inference
 * contends with OIS down-sampling for the one FPGA of Fig. 4, or
 * splits onto fpga.dsu/fpga.fcu. Any other backend (Mesorasi's GPU,
 * PointACC's die, the CPU reference) occupies its own device with
 * fpgaUnits units while the down-sampler keeps the FPGA to itself.
 */

#ifndef HGPCN_RUNTIME_STREAM_RUNNER_H
#define HGPCN_RUNTIME_STREAM_RUNNER_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/real_time.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "runtime/stage_pipeline.h"
#include "runtime/stages.h"
#include "runtime/virtual_timeline.h"

namespace hgpcn
{

class InferenceEngine; // compat constructor only (core/)

/** One frame that completed the pipeline (not dropped). */
struct ProcessedFrame
{
    std::size_t index = 0;  //!< position in the input stream
    double latencySec = 0;  //!< admission-to-completion, virtual time
    double doneSec = 0;     //!< completion on the virtual timeline
    E2eResult result;       //!< functional outputs + cycle breakdown
};

/** Stream-level performance report (virtual-time, deterministic). */
struct RuntimeReport
{
    std::size_t framesIn = 0;        //!< offered by the source
    std::size_t framesProcessed = 0;
    std::size_t framesDropped = 0;   //!< overload-policy victims
    std::size_t framesAbandoned = 0; //!< lost to requestStop()

    // Fault-tolerance attribution (zero without a fault schedule).
    // Conservation: in == processed + dropped + abandoned + failed.
    std::size_t framesFailed = 0;   //!< retries/deadline exhausted
    std::size_t framesRetried = 0;  //!< completed with > 1 attempt
    std::size_t framesDegraded = 0; //!< completed at reduced fidelity

    double makespanSec = 0;   //!< first arrival -> last completion
    double sustainedFps = 0;  //!< processed / makespan

    /** Per-frame latency (arrival to completion) distribution. */
    double meanLatencySec = 0;
    double p50LatencySec = 0;
    double p95LatencySec = 0;
    double p99LatencySec = 0;
    double maxLatencySec = 0;

    /** Sensor rate from timestamps (0 when unpaced or <2 frames). */
    double generationFps = 0;
    /** Section VII-E criterion: sustainedFps >= generationFps.
     * NotApplicable when no generation rate is derivable — batch
     * admission, an unstamped stream or <2 frames race no sensor,
     * so there is no criterion to pass. */
    RealTimeVerdict realTime = RealTimeVerdict::NotApplicable;

    OverloadPolicy policy = OverloadPolicy::Block;
    bool paced = true;

    /** Per-stage load, in dataflow order. */
    std::vector<TimelineStageStats> stages;

    // Temporal-cache attribution, read back from the run's metrics
    // registry ("temporal.*" counters). -1 = not applicable (cache
    // off or no frames); percentages in [0, 100] otherwise.
    double temporalSubtreeReusePct = -1;
    double temporalKnnHitPct = -1;

    // Batch-occupancy attribution of the inference stage, from the
    // virtual schedule. Defaults (and an absent toString() line)
    // when configuredMaxBatch == 1.
    std::size_t configuredMaxBatch = 1;
    std::size_t batchCount = 0;    //!< coalesced dispatches
    std::size_t batchedFrames = 0; //!< frames served in batches >= 2
    std::size_t soloFrames = 0;    //!< frames dispatched alone
    double meanBatchSize = 0;
    std::size_t maxBatchSize = 0;

    /** Render a multi-line human-readable summary. */
    std::string toString() const;
};

/** Everything one run() produced. */
struct RuntimeResult
{
    /** Completed frames in stream order (dropped frames absent). */
    std::vector<ProcessedFrame> frames;
    RuntimeReport report;
    /** Aggregated workload counters across all frames. */
    StatSet workload;
    /** The run's metrics registry, frozen: frame/drop/batch
     * counters, stall attribution gauges, temporal-cache telemetry.
     * ServingResult merges these shard-wise. */
    MetricsSnapshot metrics;

    /** Stream-local indices of frames that terminally failed /
     * completed after retries / completed degraded. Empty without a
     * fault schedule; the serving layer maps them to global frame
     * indices for per-sensor and per-backend attribution. */
    std::vector<std::size_t> failedFrames;
    std::vector<std::size_t> retriedFrames;
    std::vector<std::size_t> degradedFrames;
};

/**
 * Optional per-frame identity for trace events, parallel to the
 * input stream. A ShardedRunner passes each shard's global frame
 * indices and sensor ids so the shard's spans carry fleet-level ids
 * instead of shard-local positions.
 */
struct StreamTraceIds
{
    std::vector<std::int64_t> frame;
    std::vector<std::int64_t> sensor;
};

/** Concurrent stage-pipeline runner over the HgPCN engines. */
class StreamRunner
{
  public:
    struct Config
    {
        /** PCN input size K (points after down-sampling). 0 means
         * "inherit" — HgPcnSystem::runStream substitutes its own K;
         * constructing a StreamRunner directly requires nonzero. */
        std::size_t inputPoints = 0;

        /** Octree-build workers — host CPU cores devoted to
         * building frame i+1's (i+2's, ...) octree while the FPGA
         * works on frame i. */
        std::size_t buildWorkers = 1;

        /** FPGA devices. Each runs OIS down-sampling and inference
         * serially (shareFpga) or in parallel unit pairs. */
        std::size_t fpgaUnits = 1;

        /** true: down-sampling and inference contend for the same
         * FPGA (the Fig. 4 platform; matches the legacy two-stage
         * pipelinedFps model). false: independent devices. */
        bool shareFpga = true;

        /** Capacity of each inter-stage queue (>= 1). */
        std::size_t queueCapacity = 8;

        /** Admission credit: max frames admitted-but-unfinished;
         * 0 = bounded only by queues and units. */
        std::size_t maxInFlight = 0;

        /** Source-queue behavior when full (virtual timeline). */
        OverloadPolicy policy = OverloadPolicy::Block;

        /** true: admit each frame at its sensor timestamp; false:
         * batch mode, every frame available at t=0. */
        bool paceBySensor = true;

        /** Host threads splitting MLP rows within one frame's
         * inference (>= 1). Wall-clock only — the modeled schedule
         * and every output bit are identical at any value; size it
         * against buildWorkers/fpgaUnits so intra- and inter-frame
         * parallelism share the host sensibly. */
        int intraOpThreads = 1;

        /** Carry pre-processing indices across frames
         * (core/temporal_preprocess.h): each frame's octree is
         * rebuilt incrementally against the previous frame's and
         * the storage is pooled. Wall-clock only — every output bit
         * is identical either way; the carry serializes the build
         * stage across buildWorkers (frames queue on its mutex). */
        bool temporalCache = true;

        /** Cross-sensor micro-batching: frames coalesced per
         * inference pass (runtime/batching_stage.h). 1 (default)
         * disables batching — pipeline, timeline and report are
         * byte-identical to a build without the feature. > 1 makes
         * the inference stage the coalescing point: per-frame
         * outputs and modeled numbers stay bit-identical; only the
         * schedule (shared device occupancy) moves. */
        std::size_t maxBatch = 1;

        /** Virtual seconds the oldest queued frame waits for a
         * batch to fill before a partial batch dispatches; 0 is
         * greedy/work-conserving (batches form only under backlog).
         * Used only when maxBatch > 1. */
        double batchTimeoutVirtualSec = 0.0;

        /** Shard id stamped on this runner's trace events and used
         * as its track prefix ("shard<N>/..."); -1 = standalone
         * ("runner/..."). Observability-only — never read by
         * scheduling. */
        std::int64_t traceShard = -1;
    };

    /**
     * @param preprocess Pre-processing engine (borrowed).
     * @param backend Execution backend to infer on (borrowed; binds
     *        its own model replica and is thread-safe by contract).
     * @param config Runner parameters.
     */
    StreamRunner(const PreprocessingEngine &preprocess,
                 const ExecutionBackend &backend,
                 const Config &config);

    /**
     * Compatibility constructor: wrap @p inference and @p model in
     * an owned HgpcnBackend — byte-identical schedule and outputs
     * to the pre-backend engine-owning runner.
     */
    StreamRunner(const PreprocessingEngine &preprocess,
                 const InferenceEngine &inference,
                 const PointNet2 &model, const Config &config);

    /**
     * Process @p frames end to end (blocking).
     *
     * Runners are reusable: run() starts fresh even after a
     * previous run was aborted by requestStop() (the StagePipeline
     * restart contract).
     *
     * @param frames The stream; timestamps must be strictly
     *        increasing when paceBySensor is set.
     * @param on_frame Optional per-frame hook, called in stream
     *        order on the collecting thread.
     * @param trace_ids Optional fleet-level frame/sensor ids for
     *        trace events (see StreamTraceIds); sizes must match
     *        @p frames when given.
     * @param faults Optional resolved per-frame fault directives,
     *        parallel to @p frames (serving/failover.h): retries,
     *        backoff and slowdown are charged as virtual time on
     *        the inference stage, degraded frames run with their
     *        reduced sample budget, failed frames are scheduled but
     *        excluded from completions. Null (or all-clean
     *        directives) leaves the run byte-identical to a build
     *        without the fault layer.
     */
    RuntimeResult run(const std::vector<Frame> &frames,
                      const FrameTaskCallback &on_frame = {},
                      const StreamTraceIds *trace_ids = nullptr,
                      const std::vector<FrameFaultDirective> *faults =
                          nullptr);

    /** Abort the in-progress run() from any thread (including the
     * on_frame hook); run() returns the frames completed so far.
     * No-op against an idle runner; a later run() starts fresh. */
    void requestStop();

    /**
     * Configuration reproducing the legacy analytical pipelinedFps:
     * batch admission, one worker per stage, one shared FPGA and
     * queues deep enough (@p n_frames) to never stall the build.
     */
    static Config compat(std::size_t n_frames,
                         std::size_t input_points);

    /** @return runner parameters. */
    const Config &config() const { return cfg; }

    /** @return the backend this runner infers on. */
    const ExecutionBackend &backend() const { return infer.backend(); }

  private:
    /** Shared delegate of the two public constructors. */
    StreamRunner(const PreprocessingEngine &preprocess,
                 std::unique_ptr<ExecutionBackend> owned_backend,
                 const ExecutionBackend *borrowed_backend,
                 const Config &config);

    Config cfg;
    /** Per-run metrics registry (cleared at each run() start;
     * frozen into RuntimeResult::metrics at the end). */
    MetricsRegistry metricsReg;
    /** Set only by the compatibility constructor (declared before
     * the stages so the InferenceStage can reference it). */
    std::unique_ptr<ExecutionBackend> owned;
    /** Cross-frame workload aggregate, merged into by down-sample
     * workers concurrently; snapshot into RuntimeResult::workload. */
    ConcurrentStatSet streamWorkload;
    /** Reusable frame workspaces leased by inference workers; warm
     * across frames and runs (declared before the stages that
     * borrow it). */
    WorkspacePool workspacePool;
    /** Cross-frame pre-processing cache (null when temporalCache is
     * off; declared before the build stage that borrows it). */
    std::shared_ptr<TemporalPreprocessState> carry;
    OctreeBuildStage build;
    DownSampleStage sample;
    InferenceStage infer;
    /** Coalescing policy referenced by the pipeline's inference
     * StageSpec (declared before the pipeline that borrows it). */
    BatchPolicy batchPolicy;
    StagePipeline pipeline;
};

} // namespace hgpcn

#endif // HGPCN_RUNTIME_STREAM_RUNNER_H
