/**
 * @file
 * Cross-sensor micro-batching: the coalescing point between
 * preprocessing and inference.
 *
 * Frames from many sensors converge on one inference device; serving
 * them one at a time leaves the device's per-pass fixed costs —
 * systolic fill/drain, per-layer weight fetch, op dispatch — paid
 * once per frame. The BatchingStage coalesces up to
 * BatchPolicy::maxBatch down-sampled frames into one batched
 * execution (ExecutionBackend::inferBatch) that shares a single
 * weight pass and one workspace arena reservation, while every
 * frame's functional output and recorded per-frame trace stay
 * bit-identical to a solo run.
 *
 * Two clocks, two mechanisms (docs/RUNTIME.md §batching):
 *  - Wall clock: the assembler below groups frames by FIXED
 *    admission-index ranges [g*B, (g+1)*B), so batch composition is
 *    deterministic no matter how threads interleave upstream.
 *  - Virtual time: the timeline's batched dispatch (runtime/
 *    virtual_timeline.h) forms batches from queue backlog, bounded
 *    by BatchPolicy::timeoutVirtualSec, and charges ONE device
 *    occupancy interval per batch (ExecutionBackend::
 *    batchServiceSec). All reported batch statistics come from the
 *    virtual schedule — per-frame modeled numbers are composition-
 *    independent, so the two groupings never disagree on any
 *    reported number.
 */

#ifndef HGPCN_RUNTIME_BATCHING_STAGE_H
#define HGPCN_RUNTIME_BATCHING_STAGE_H

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "runtime/stage.h"

namespace hgpcn
{

/** Micro-batching knobs, plumbed from StreamRunner::Config. */
struct BatchPolicy
{
    /** Frames coalesced per inference pass (1 = batching off; the
     * pipeline and timeline then run their pre-batching paths,
     * byte-identical to a build without this feature). */
    std::size_t maxBatch = 1;

    /**
     * Virtual seconds the oldest queued frame may wait for a batch
     * to fill before a partial batch is dispatched. 0 keeps the
     * timeline work-conserving: whatever is queued when a device
     * unit frees dispatches immediately, so batches form only
     * under backlog and latency-sensitive traffic never waits.
     * Consumed by the virtual timeline only — the wall-clock
     * assembler groups by admission index for determinism.
     */
    double timeoutVirtualSec = 0.0;
};

/**
 * Deterministic wall-clock batch assembler: groups FrameTasks by
 * fixed admission-index ranges [g*maxBatch, (g+1)*maxBatch).
 *
 * The single batching worker feeds tasks in whatever order the
 * upstream pool emitted them; groups are released exactly when
 * complete, in group order, so the batched execution sequence is a
 * pure function of the admitted stream. Owned and driven by
 * StagePipeline's final-stage worker.
 */
class BatchingStage
{
  public:
    using Group = std::vector<std::unique_ptr<FrameTask>>;

    explicit BatchingStage(std::size_t max_batch);

    /** Feed one task; @return every group this completes (possibly
     * several, when the task plugs a gap), in group order. */
    std::vector<Group> add(std::unique_ptr<FrameTask> task);

    /** End of stream: release the remaining tasks as partial
     * groups in index order. */
    std::vector<Group> flush();

    /** @return tasks currently held back. */
    std::size_t pendingCount() const { return pending.size(); }

  private:
    std::size_t max_batch;
    std::size_t next_base = 0; //!< first index of the open group
    std::map<std::size_t, std::unique_ptr<FrameTask>> pending;
};

} // namespace hgpcn

#endif // HGPCN_RUNTIME_BATCHING_STAGE_H
