/**
 * @file
 * Threaded stage-graph executor: real multi-frame-in-flight
 * execution of the functional work.
 *
 * One BoundedQueue per stage boundary, one worker pool per stage;
 * a source thread admits FrameTasks in order, every worker pops,
 * runs its stage (recording the modeled cost) and pushes the task
 * downstream; the caller's thread collects from the final queue and
 * emits results in admission order through a reorder buffer. All
 * internal queues use the Block policy so no functional result is
 * lost — overload behavior is modeled deterministically by the
 * virtual timeline (see runtime/virtual_timeline.h), not by racing
 * wall clocks.
 *
 * requestStop() (callable from the emit callback or any thread)
 * closes every queue: blocked producers wake, workers discard what
 * is still queued, and run() returns the frames that made it
 * through — shutdown with frames in flight is an ordinary,
 * deadlock-free path.
 *
 * Restart contract: a pipeline is reusable. run() clears any stop
 * left by a previous run on entry, so a stopped pipeline restarts
 * cleanly instead of silently abandoning the whole stream.
 * requestStop() aborts the run in progress; against an idle
 * pipeline it is a no-op (except for a stop racing run() entry,
 * which may abort the starting run — the caller asked to stop
 * "now", and "now" is that run).
 */

#ifndef HGPCN_RUNTIME_STAGE_PIPELINE_H
#define HGPCN_RUNTIME_STAGE_PIPELINE_H

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/bounded_queue.h"
#include "runtime/batching_stage.h"
#include "runtime/stage.h"

namespace hgpcn
{

/** In-order per-frame hook, invoked on the collecting thread. */
using FrameTaskCallback = std::function<void(const FrameTask &)>;

/** Executes a linear stage graph with per-stage worker pools. */
class StagePipeline
{
  public:
    /** One station and its worker-pool width. */
    struct StageSpec
    {
        const PipelineStage *stage = nullptr; //!< borrowed
        std::size_t workers = 1;

        /**
         * Micro-batching policy (borrowed); non-null with
         * maxBatch > 1 turns this stage into the coalescing point:
         * its single worker assembles fixed admission-index groups
         * (BatchingStage) and runs them through
         * PipelineStage::processBatch. Only the LAST stage may
         * batch, and it must have exactly one worker — coalescing
         * is an ordering point, a pool behind it would re-race what
         * the assembler just ordered.
         */
        const BatchPolicy *batch = nullptr;
    };

    struct Config
    {
        /** Capacity of each inter-stage queue (>= 1). */
        std::size_t queueCapacity = 8;
    };

    StagePipeline(std::vector<StageSpec> stage_specs,
                  const Config &config);

    /**
     * Push @p tasks through the graph (blocking).
     *
     * Clears any stop requested against a previous run, so a
     * pipeline may be reused after requestStop() — each run()
     * starts fresh.
     *
     * @param tasks Frames in admission order; moved in.
     * @param on_task Optional hook, called once per completed frame
     *        in admission order.
     * @return completed tasks sorted by admission index — all of
     * them, unless requestStop() truncated the run.
     */
    std::vector<std::unique_ptr<FrameTask>>
    run(std::vector<std::unique_ptr<FrameTask>> tasks,
        const FrameTaskCallback &on_task = {});

    /**
     * Abort the run in progress: close every queue and discard
     * queued work. Safe from any thread, including the on_task
     * callback; idempotent. Against an idle pipeline this is a
     * no-op — the next run() clears it and proceeds.
     */
    void requestStop();

    /** @return true while the current run is being aborted; the
     * next run() clears it. */
    bool stopRequested() const { return stopped.load(); }

  private:
    using TaskQueue = BoundedQueue<std::unique_ptr<FrameTask>>;

    std::vector<StageSpec> specs;
    Config cfg;

    std::atomic<bool> stopped{false};
    // Queues of the active run; guarded by the run() lifetime —
    // requestStop() only closes, never destroys.
    std::vector<std::shared_ptr<TaskQueue>> queues;
    std::mutex queues_mu;
};

} // namespace hgpcn

#endif // HGPCN_RUNTIME_STAGE_PIPELINE_H
