/**
 * @file
 * Deterministic virtual-time scheduler for the stage pipeline.
 *
 * The runtime keeps two clocks (docs/RUNTIME.md): wall-clock threads
 * carry the functional computation, while *modeled* per-stage costs
 * — the cycle models' output — decide the performance numbers. This
 * module is the modeled half: a discrete-event simulation that
 * schedules every frame's stage costs over a small machine
 * description (stages, the device each occupies, units per device,
 * queue capacity, overload policy, frames-in-flight credit) and
 * yields per-frame start/finish times plus per-stage occupancy and
 * utilization. Being pure arithmetic over recorded costs, it is
 * exactly reproducible regardless of thread interleaving.
 *
 * Scheduling rules:
 *  - admission: frame i is offered at arrival[i] (its sensor stamp,
 *    or 0 in batch mode), in order. A full source queue or an
 *    exhausted in-flight credit applies the overload policy: Block
 *    delays the admission (and everything behind it), DropNewest
 *    discards the newcomer, DropOldest evicts the longest-queued
 *    un-started frame.
 *  - dispatch: each stage pulls FIFO from its input queue when a
 *    unit of its device is free; stages sharing a device are served
 *    downstream-first, so a frame in flight drains before new work
 *    is accepted (this is what serializes OIS down-sampling and
 *    inference on the one FPGA, matching the legacy two-stage
 *    pipeline estimate).
 *  - hand-off: a finished frame moves to the next stage's queue; if
 *    that queue is full the unit stays held (back-pressure), which
 *    is how stalls propagate upstream.
 */

#ifndef HGPCN_RUNTIME_VIRTUAL_TIMELINE_H
#define HGPCN_RUNTIME_VIRTUAL_TIMELINE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/overload_policy.h"

namespace hgpcn
{

/** One station of the simulated machine. */
struct TimelineStageSpec
{
    std::string name;     //!< stage label for reports
    std::string resource; //!< device occupied while processing
};

/** Micro-batching at the LAST stage of the machine. */
struct TimelineBatchSpec
{
    /** Frames coalesced per dispatch (1 = batching off; the
     * simulation then runs the classic per-frame path). */
    std::size_t maxBatch = 1;

    /**
     * Max virtual seconds the oldest queued frame waits for the
     * batch to fill before a partial batch dispatches. 0 is greedy
     * and work-conserving: whatever is queued when a unit frees
     * goes immediately, so batches only form under backlog.
     */
    double timeoutSec = 0.0;
};

/**
 * Service seconds for one coalesced dispatch (frame indices in
 * dispatch order). Must equal the frame's solo cost for a batch of
 * one; a null callback falls back to the sum of solo costs (no
 * sharing). See ExecutionBackend::batchServiceSec.
 */
using TimelineBatchCost =
    std::function<double(const std::vector<std::size_t> &)>;

/** Machine description for one simulation. */
struct TimelineConfig
{
    /** Stations in dataflow order. */
    std::vector<TimelineStageSpec> stages;

    /** Micro-batching of the last stage (default: off). */
    TimelineBatchSpec batch;

    /** Units per device; devices not listed default to 1. */
    std::map<std::string, std::size_t> resourceUnits;

    /** Capacity of every inter-stage queue (>= 1). */
    std::size_t queueCapacity = 8;

    /** Behavior when the source queue / in-flight credit is full. */
    OverloadPolicy policy = OverloadPolicy::Block;

    /** Max frames admitted-but-unfinished; 0 = bounded only by the
     * queues and units. */
    std::size_t maxInFlight = 0;
};

/** Scheduled life of one frame. */
struct TimelineFrame
{
    bool dropped = false;   //!< discarded by the overload policy
    double arrivalSec = 0;  //!< offered to the source (sensor stamp)
    double admitSec = 0;    //!< entered the source queue
    std::vector<double> startSec;  //!< per-stage begin (undef if dropped)
    std::vector<double> finishSec; //!< per-stage end
    double doneSec = 0;     //!< completion of the last stage
    double latencySec = 0;  //!< doneSec - arrivalSec

    /**
     * Per-stage queue-entry time (enqueueSec[0] == admitSec), so a
     * frame's life decomposes exactly into queue wait
     * (startSec[s] - enqueueSec[s]), execution
     * (finishSec[s] - startSec[s]) and back-pressure hold
     * (enqueueSec[s+1] - finishSec[s]). Tracing-side bookkeeping;
     * never feeds back into scheduling.
     */
    std::vector<double> enqueueSec;

    /**
     * Of the last-stage queue wait, the seconds spent with a device
     * unit FREE but the dispatch gate held for batch fill (bounded
     * by TimelineBatchSpec::timeoutSec). 0 without batching.
     */
    double batchWaitSec = 0;

    /** Index into TimelineResult::batches (-1 without batching). */
    std::int64_t batchId = -1;

    /** When the overload policy discarded this frame (dropped only). */
    double droppedAtSec = 0;

    /** Frames sharing this frame's last-stage dispatch (1 = served
     * solo; > 1 only with batching enabled). */
    std::size_t batchSize = 1;
};

/** Per-stage load numbers over the simulated span. */
struct TimelineStageStats
{
    std::string name;
    std::string resource;
    std::size_t units = 1;      //!< units of the stage's device
    double busySec = 0;         //!< summed stage costs executed
    double utilization = 0;     //!< busySec / (units * makespan)
    double meanQueueDepth = 0;  //!< time-weighted input-queue depth
    std::size_t peakQueueDepth = 0;
};

/** One coalesced last-stage dispatch (batching only). */
struct TimelineBatch
{
    double startSec = 0;
    double finishSec = 0;
    std::vector<std::size_t> members; //!< frame indices, FIFO order
};

/** Result of one simulation. */
struct TimelineResult
{
    std::vector<TimelineFrame> frames; //!< parallel to the input
    std::vector<TimelineBatch> batches; //!< dispatch log (batching only)
    std::size_t processed = 0;
    std::size_t dropped = 0;
    double makespanSec = 0; //!< first arrival -> last completion
    std::vector<TimelineStageStats> stages;

    // Batch-occupancy attribution of the last stage, filled only
    // when cfg.batch.maxBatch > 1 (zeros otherwise).
    std::size_t batchCount = 0;    //!< dispatches (incl. solo)
    std::size_t batchedFrames = 0; //!< frames in batches of >= 2
    std::size_t soloFrames = 0;    //!< frames dispatched alone
    double meanBatchSize = 0;      //!< processed / batchCount
    std::size_t maxBatchSize = 0;  //!< largest dispatch observed
};

/**
 * Schedule @p costs over the machine in @p cfg.
 *
 * @param cfg Machine description.
 * @param arrivals Arrival time per frame, non-decreasing.
 * @param costs costs[i][s] = modeled seconds of frame i at stage s.
 * @param batch_cost Shared service seconds per coalesced last-stage
 *        dispatch; used only when cfg.batch.maxBatch > 1 and the
 *        dispatch holds >= 2 frames (a batch of one is charged its
 *        solo cost exactly). Null = sum of solo costs.
 *
 * With batching, a dispatch takes min(queued, maxBatch) frames
 * FIFO, holds ONE unit of the stage's device, and charges its
 * occupancy (busySec) once with the batched cost; every member
 * starts at dispatch and completes when the batch does — honest
 * all-complete-at-end stamps, no fabricated per-frame slicing.
 */
TimelineResult
simulateTimeline(const TimelineConfig &cfg,
                 const std::vector<double> &arrivals,
                 const std::vector<std::vector<double>> &costs,
                 const TimelineBatchCost &batch_cost = {});

} // namespace hgpcn

#endif // HGPCN_RUNTIME_VIRTUAL_TIMELINE_H
