#include "runtime/stream_runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "backends/hgpcn_backend.h"
#include "common/logging.h"
#include "core/temporal_preprocess.h"
#include "obs/trace.h"

namespace hgpcn
{
namespace
{

/** Track prefix of this runner's trace events. */
std::string
traceScope(std::int64_t shard)
{
    return shard >= 0 ? "shard" + std::to_string(shard) : "runner";
}

/** Spans smaller than this are schedule noise, not stalls; skipping
 *  them keeps traces compact without losing any attribution mass. */
constexpr double kMinSpanSec = 1e-12;

/**
 * Emit the virtual-time schedule as trace events. Runs AFTER
 * simulateTimeline, purely over its deterministic result, so the
 * emitted stream is identical across runs and thread interleavings.
 *
 * Per frame, the spans partition [arrival, done] exactly:
 *   pend:source | per stage: wait:<s> (queue) -> batchwait:<s>
 *   (last stage, fill-gate share) -> exec:<s> -> blocked:<s>
 *   (back-pressure hold before stage s+1 admits).
 * trace_report.py's stall table and --check conservation rule rely
 * on this decomposition.
 *
 * @param t0 Global virtual time of local second 0 (the first
 *        frame's sensor stamp when paced) — shard timelines land on
 *        the fleet clock with no extra plumbing.
 * @param faults Optional per-frame fault directives aligned with
 *        timeline.frames; retry/fail/degrade markers are emitted as
 *        instants (the charged time already lives inside the exec
 *        span, so the tiling decomposition above is undisturbed).
 */
void
emitVirtualTrace(Tracer &tracer, const TimelineResult &timeline,
                 const std::vector<TimelineStageSpec> &stages,
                 double t0, std::int64_t shard,
                 const std::vector<std::int64_t> &frame_ids,
                 const std::vector<std::int64_t> &sensor_ids,
                 const std::vector<FrameFaultDirective> *faults)
{
    const std::string scope = traceScope(shard);
    const std::size_t n_stages = stages.size();
    const std::size_t last = n_stages - 1;
    // The stage honoring the degraded sample budget (down-sample in
    // the standard three-stage graph).
    const std::size_t ds = n_stages >= 2 ? last - 1 : 0;

    for (std::size_t j = 0; j < timeline.frames.size(); ++j) {
        const TimelineFrame &tf = timeline.frames[j];
        TraceIds ids;
        ids.frame = frame_ids[j];
        ids.sensor = sensor_ids[j];
        ids.shard = shard;
        if (tf.dropped) {
            tracer.instant(TraceClock::Virtual,
                           t0 + tf.droppedAtSec, "drop:source",
                           "overload", scope + "/source", ids);
            continue;
        }
        if (faults != nullptr && !(*faults)[j].clean()) {
            const FrameFaultDirective &d = (*faults)[j];
            const std::string track =
                scope + "/" + stages[last].name;
            if (d.attempts > 1) {
                tracer.instant(TraceClock::Virtual,
                               t0 + tf.startSec[last],
                               "retry:" + stages[last].name, "fault",
                               track, ids);
            }
            if (d.failed) {
                tracer.instant(TraceClock::Virtual, t0 + tf.doneSec,
                               "fail:" + stages[last].name, "fault",
                               track, ids);
            }
            if (d.degraded) {
                tracer.instant(TraceClock::Virtual,
                               t0 + tf.startSec[ds],
                               "degrade:" + stages[ds].name, "fault",
                               scope + "/" + stages[ds].name, ids);
            }
        }
        if (tf.admitSec - tf.arrivalSec > kMinSpanSec) {
            tracer.span(TraceClock::Virtual, t0 + tf.arrivalSec,
                        tf.admitSec - tf.arrivalSec, "pend:source",
                        "stall", scope + "/source", ids);
        }
        ids.batch = tf.batchId;
        for (std::size_t s = 0; s < n_stages; ++s) {
            const std::string track = scope + "/" + stages[s].name;
            const double batch_wait =
                s == last ? tf.batchWaitSec : 0.0;
            const double queue_wait =
                tf.startSec[s] - tf.enqueueSec[s] - batch_wait;
            if (queue_wait > kMinSpanSec) {
                tracer.span(TraceClock::Virtual,
                            t0 + tf.enqueueSec[s], queue_wait,
                            "wait:" + stages[s].name, "stall",
                            track, ids);
            }
            if (batch_wait > kMinSpanSec) {
                tracer.span(TraceClock::Virtual,
                            t0 + tf.startSec[s] - batch_wait,
                            batch_wait,
                            "batchwait:" + stages[s].name, "stall",
                            track, ids);
            }
            tracer.span(TraceClock::Virtual, t0 + tf.startSec[s],
                        tf.finishSec[s] - tf.startSec[s],
                        "exec:" + stages[s].name,
                        stages[s].resource, track, ids);
            if (s < last) {
                const double held =
                    tf.enqueueSec[s + 1] - tf.finishSec[s];
                if (held > kMinSpanSec) {
                    tracer.span(TraceClock::Virtual,
                                t0 + tf.finishSec[s], held,
                                "blocked:" + stages[s].name,
                                "stall", track, ids);
                }
            }
        }
    }

    // The device view of batching: one span per coalesced dispatch
    // (the ONE occupancy interval the schedule charged).
    for (std::size_t b = 0; b < timeline.batches.size(); ++b) {
        const TimelineBatch &batch = timeline.batches[b];
        TraceIds ids;
        ids.shard = shard;
        ids.batch = static_cast<std::int64_t>(b);
        tracer.counter(TraceClock::Virtual, t0 + batch.startSec,
                       "batch-size", scope + "/batches",
                       static_cast<double>(batch.members.size()));
        tracer.span(TraceClock::Virtual, t0 + batch.startSec,
                    batch.finishSec - batch.startSec,
                    "batch:" + stages[last].name,
                    stages[last].resource, scope + "/batches", ids);
    }
}

/** Cross-frame cache matching the engine's octree policy, or null
 * when the runner is configured without one. */
std::shared_ptr<TemporalPreprocessState>
makeCarry(const PreprocessingEngine &preprocess,
          const StreamRunner::Config &cfg)
{
    if (!cfg.temporalCache)
        return nullptr;
    TemporalPreprocessState::Config tc;
    tc.octree = preprocess.config().octree;
    return std::make_shared<TemporalPreprocessState>(tc);
}

std::vector<StagePipeline::StageSpec>
makeSpecs(const OctreeBuildStage &build, const DownSampleStage &sample,
          const InferenceStage &infer, const BatchPolicy &batch,
          const StreamRunner::Config &cfg)
{
    StagePipeline::StageSpec inference{&infer, cfg.fpgaUnits,
                                       nullptr};
    if (batch.maxBatch > 1) {
        // The coalescing point is an ordering point: one worker
        // assembles deterministic admission-index groups (the
        // virtual timeline still schedules fpgaUnits device units).
        inference.workers = 1;
        inference.batch = &batch;
    }
    return {{&build, cfg.buildWorkers},
            {&sample, cfg.fpgaUnits},
            inference};
}

/** Down-sampling device: the FPGA, split into its DSU half only
 * when an FPGA-resident backend runs unshared. */
std::string
sampleResource(const ExecutionBackend &backend,
               const StreamRunner::Config &cfg)
{
    if (backend.resource() == "fpga" && !cfg.shareFpga)
        return "fpga.dsu";
    return "fpga";
}

/** Inference device: an FPGA-resident backend follows the shareFpga
 * semantics (the one fabric of Fig. 4, or its FCU half); any other
 * backend occupies its own device. */
std::string
inferResource(const ExecutionBackend &backend,
              const StreamRunner::Config &cfg)
{
    if (backend.resource() == "fpga")
        return cfg.shareFpga ? "fpga" : "fpga.fcu";
    return backend.resource();
}

StagePipeline::Config
pipelineConfig(const StreamRunner::Config &cfg)
{
    StagePipeline::Config pc;
    pc.queueCapacity = cfg.maxInFlight > 0
                           ? std::min(cfg.queueCapacity,
                                      cfg.maxInFlight)
                           : cfg.queueCapacity;
    return pc;
}

} // namespace

std::string
RuntimeReport::toString() const
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(1);
    oss << "frames: " << framesProcessed << "/" << framesIn
        << " processed";
    if (framesDropped > 0)
        oss << ", " << framesDropped << " dropped ("
            << overloadPolicyName(policy) << ")";
    if (framesAbandoned > 0)
        oss << ", " << framesAbandoned << " abandoned (stopped)";
    oss << (paced ? ", sensor-paced" : ", batch") << "\n";
    // Absent on fault-free runs, keeping legacy output exact.
    if (framesFailed > 0 || framesRetried > 0 || framesDegraded > 0) {
        oss << "faults: " << framesFailed << " failed | "
            << framesRetried << " retried | " << framesDegraded
            << " degraded\n";
    }
    oss << "sustained: " << sustainedFps << " FPS over "
        << makespanSec * 1e3 << " ms";
    if (generationFps > 0.0)
        oss << " | sensor: " << generationFps << " FPS";
    oss << " | real-time: " << realTimeVerdictName(realTime);
    if (realTime == RealTimeVerdict::NotApplicable)
        oss << " (no sensor pacing)";
    oss << "\n";
    oss.precision(2);
    oss << "latency ms: mean " << meanLatencySec * 1e3 << " | p50 "
        << p50LatencySec * 1e3 << " | p95 " << p95LatencySec * 1e3
        << " | p99 " << p99LatencySec * 1e3 << " | max "
        << maxLatencySec * 1e3 << "\n";
    // Absent at maxBatch == 1, keeping the report byte-identical to
    // a build without batching.
    if (configuredMaxBatch > 1) {
        oss << "batching: max " << configuredMaxBatch
            << " | dispatches " << batchCount << " | batched "
            << batchedFrames << " | solo " << soloFrames
            << " | mean size " << meanBatchSize << " | peak "
            << maxBatchSize << "\n";
    }
    for (const TimelineStageStats &st : stages) {
        oss << "stage " << st.name << " [" << st.resource << " x"
            << st.units << "]: util "
            << static_cast<int>(st.utilization * 100.0 + 0.5)
            << "%, queue mean " << st.meanQueueDepth << " peak "
            << st.peakQueueDepth << "\n";
    }
    // Absent without a temporal carry, keeping legacy output exact.
    if (temporalSubtreeReusePct >= 0.0 || temporalKnnHitPct >= 0.0) {
        oss << "temporal: subtree reuse ";
        if (temporalSubtreeReusePct >= 0.0)
            oss << temporalSubtreeReusePct << "%";
        else
            oss << "n/a";
        oss << " | knn cache ";
        if (temporalKnnHitPct >= 0.0)
            oss << temporalKnnHitPct << "%";
        else
            oss << "n/a";
        oss << "\n";
    }
    return oss.str();
}

StreamRunner::StreamRunner(const PreprocessingEngine &preprocess,
                           std::unique_ptr<ExecutionBackend>
                               owned_backend,
                           const ExecutionBackend *borrowed_backend,
                           const Config &config)
    : cfg(config), owned(std::move(owned_backend)),
      carry(makeCarry(preprocess, config)),
      build(preprocess, "cpu", carry.get()),
      sample(preprocess, config.inputPoints,
             sampleResource(owned ? *owned : *borrowed_backend,
                            config),
             &streamWorkload),
      infer(owned ? *owned : *borrowed_backend,
            inferResource(owned ? *owned : *borrowed_backend,
                          config),
            &workspacePool, config.intraOpThreads),
      batchPolicy{config.maxBatch, config.batchTimeoutVirtualSec},
      pipeline(makeSpecs(build, sample, infer, batchPolicy, config),
               pipelineConfig(config))
{
    HGPCN_ASSERT(cfg.inputPoints >= 1, "inputPoints must be >= 1");
    HGPCN_ASSERT(cfg.buildWorkers >= 1, "buildWorkers must be >= 1");
    HGPCN_ASSERT(cfg.fpgaUnits >= 1, "fpgaUnits must be >= 1");
    HGPCN_ASSERT(cfg.intraOpThreads >= 1,
                 "intraOpThreads must be >= 1");
    HGPCN_ASSERT(cfg.maxBatch >= 1, "maxBatch must be >= 1");
    HGPCN_ASSERT(cfg.batchTimeoutVirtualSec >= 0.0,
                 "batchTimeoutVirtualSec must be >= 0");
    if (carry)
        carry->setObservability(&metricsReg, cfg.traceShard);
}

StreamRunner::StreamRunner(const PreprocessingEngine &preprocess,
                           const ExecutionBackend &backend,
                           const Config &config)
    : StreamRunner(preprocess, nullptr, &backend, config)
{
}

StreamRunner::StreamRunner(const PreprocessingEngine &preprocess,
                           const InferenceEngine &inference,
                           const PointNet2 &model,
                           const Config &config)
    : StreamRunner(preprocess,
                   std::make_unique<HgpcnBackend>(inference, model),
                   nullptr, config)
{
}

StreamRunner::Config
StreamRunner::compat(std::size_t n_frames, std::size_t input_points)
{
    Config c;
    c.inputPoints = input_points;
    c.buildWorkers = 1;
    c.fpgaUnits = 1;
    c.shareFpga = true;
    c.queueCapacity = std::max<std::size_t>(n_frames, 1);
    c.maxInFlight = 0;
    c.policy = OverloadPolicy::Block;
    c.paceBySensor = false;
    return c;
}

RuntimeResult
StreamRunner::run(const std::vector<Frame> &frames,
                  const FrameTaskCallback &on_frame,
                  const StreamTraceIds *trace_ids,
                  const std::vector<FrameFaultDirective> *faults)
{
    HGPCN_ASSERT(trace_ids == nullptr ||
                     (trace_ids->frame.size() == frames.size() &&
                      trace_ids->sensor.size() == frames.size()),
                 "trace_ids must parallel the input stream");
    HGPCN_ASSERT(faults == nullptr ||
                     faults->size() == frames.size(),
                 "fault directives must parallel the input stream");
    RuntimeResult out;
    out.report.policy = cfg.policy;
    out.report.paced = cfg.paceBySensor;
    out.report.framesIn = frames.size();
    // Fresh registry per run (the runner-reuse contract): the
    // temporal carry and the sections below write into it, and the
    // final snapshot is the report's source of truth.
    metricsReg.clear();
    if (frames.empty()) {
        out.metrics = metricsReg.snapshot();
        return out;
    }

    // A malformed stream should fail on this thread before any work
    // is done, not abort a worker mid-run: check the sensor rate
    // (timestamp monotonicity) and that every frame covers K.
    // Streams that carry no timestamps at all (generators other
    // than the LiDAR simulator leave 0.0) cannot be sensor-paced;
    // fall back to batch admission rather than treating them as
    // corrupt.
    bool paced = cfg.paceBySensor;
    if (paced && frames.size() >= 2) {
        bool unstamped = true;
        for (const Frame &frame : frames) {
            if (frame.timestamp != frames.front().timestamp) {
                unstamped = false;
                break;
            }
        }
        if (unstamped) {
            warn("stream carries no generation timestamps; "
                 "falling back to batch admission");
            paced = false;
        }
    }
    out.report.paced = paced;
    const double generation_fps =
        paced ? streamGenerationFps(frames) : 0.0;
    for (const Frame &frame : frames) {
        HGPCN_ASSERT(frame.cloud.size() >= cfg.inputPoints,
                     "frame '", frame.name, "' smaller than K: ",
                     frame.cloud.size(), " < ", cfg.inputPoints);
    }
    streamWorkload.clear();

    // Real concurrent execution of the functional work.
    std::vector<std::unique_ptr<FrameTask>> tasks;
    tasks.reserve(frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
        auto task = std::make_unique<FrameTask>();
        task->index = i;
        task->frame = &frames[i];
        if (faults != nullptr)
            task->fault = (*faults)[i];
        tasks.push_back(std::move(task));
    }
    std::vector<std::unique_ptr<FrameTask>> completed =
        pipeline.run(std::move(tasks), on_frame);

    // Virtual-time schedule over the recorded cycle-model costs.
    const double t0 = frames.front().timestamp;
    std::vector<double> arrivals;
    std::vector<std::vector<double>> costs;
    arrivals.reserve(completed.size());
    costs.reserve(completed.size());
    for (const auto &task : completed) {
        arrivals.push_back(paced ? task->frame->timestamp - t0
                                 : 0.0);
        costs.push_back(task->stageCostSec);
    }
    out.workload = streamWorkload.snapshot();

    TimelineConfig tl;
    tl.stages = {{build.name(), build.resource()},
                 {sample.name(), sample.resource()},
                 {infer.name(), infer.resource()}};
    tl.resourceUnits["cpu"] = cfg.buildWorkers;
    // Collapses to one "fpga" entry when the backend shares the
    // fabric with the down-sampler (the Fig. 4 platform).
    tl.resourceUnits[sample.resource()] = cfg.fpgaUnits;
    tl.resourceUnits[infer.resource()] = cfg.fpgaUnits;
    tl.queueCapacity = cfg.queueCapacity;
    tl.policy = cfg.policy;
    tl.maxInFlight = cfg.maxInFlight;
    // Micro-batching: the inference stage coalesces; a dispatch of
    // >= 2 frames is charged the backend's shared batched service
    // time, computed from the per-frame traces recorded by the
    // functional run (pure arithmetic — deterministic).
    TimelineBatchCost batch_cost;
    if (cfg.maxBatch > 1) {
        tl.batch.maxBatch = cfg.maxBatch;
        tl.batch.timeoutSec = cfg.batchTimeoutVirtualSec;
        batch_cost = [this, &completed](
                         const std::vector<std::size_t> &members) {
            std::vector<const BackendInference *> ptrs;
            ptrs.reserve(members.size());
            // Each member's fault surcharge (retries, backoff,
            // slowdown) extends the shared occupancy — the device
            // is held exactly as long as in solo dispatch. Zero for
            // clean directives, keeping the sum bit-exact.
            double fault_extra = 0.0;
            for (const std::size_t j : members) {
                ptrs.push_back(&completed[j]->result.inference);
                fault_extra += completed[j]->faultExtraSec;
            }
            return backend().batchServiceSec(ptrs) + fault_extra;
        };
    }
    const TimelineResult timeline =
        simulateTimeline(tl, arrivals, costs, batch_cost);

    // Fault tallies over the scheduled frames: a terminally failed
    // frame occupied the device (the schedule charged it) but
    // delivers nothing, so it moves from "processed" to "failed" —
    // conservation: in == processed + dropped + abandoned + failed.
    std::size_t n_failed = 0;
    if (faults != nullptr) {
        for (std::size_t j = 0; j < completed.size(); ++j) {
            if (timeline.frames[j].dropped)
                continue;
            const FrameFaultDirective &d = completed[j]->fault;
            if (d.failed) {
                ++n_failed;
                out.failedFrames.push_back(completed[j]->index);
                continue;
            }
            if (d.attempts > 1)
                out.retriedFrames.push_back(completed[j]->index);
            if (d.degraded)
                out.degradedFrames.push_back(completed[j]->index);
        }
    }

    // Publish the schedule into the run's metrics registry; the
    // report reads these back from the snapshot below, so adding a
    // new attribution is one registration away from every consumer
    // (RuntimeReport, ServingReport, trace_report.py).
    metricsReg.counter("frames.in").add(frames.size());
    metricsReg.counter("frames.processed")
        .add(timeline.processed - n_failed);
    metricsReg.counter("frames.dropped").add(timeline.dropped);
    metricsReg.counter("frames.abandoned")
        .add(frames.size() - completed.size());
    if (faults != nullptr) {
        // Registered only on faulted runs: the zero-fault metrics
        // snapshot stays byte-identical to a pre-fault build.
        metricsReg.counter("frames.failed").add(n_failed);
        metricsReg.counter("frames.retried")
            .add(out.retriedFrames.size());
        metricsReg.counter("frames.degraded")
            .add(out.degradedFrames.size());
    }
    metricsReg.gauge("timeline.makespan_sec")
        .add(timeline.makespanSec);
    Histogram &latency_hist = metricsReg.histogram(
        "frame.latency_sec",
        {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0});
    Gauge &wait_sum = metricsReg.gauge("stall.queue_wait_sec");
    Gauge &batch_wait_sum = metricsReg.gauge("stall.batch_wait_sec");
    Gauge &exec_sum = metricsReg.gauge("stall.exec_sec");
    Gauge &blocked_sum = metricsReg.gauge("stall.output_blocked_sec");
    Gauge &pend_sum = metricsReg.gauge("stall.source_pend_sec");
    const std::size_t last_stage = tl.stages.size() - 1;
    for (std::size_t j = 0; j < timeline.frames.size(); ++j) {
        const TimelineFrame &tf = timeline.frames[j];
        if (tf.dropped)
            continue;
        // Failed frames still contribute their stall attribution
        // (they held real schedule time) but not completion latency.
        if (!completed[j]->fault.failed)
            latency_hist.observe(tf.latencySec);
        pend_sum.add(tf.admitSec - tf.arrivalSec);
        batch_wait_sum.add(tf.batchWaitSec);
        for (std::size_t s = 0; s < tl.stages.size(); ++s) {
            const double bw = s == last_stage ? tf.batchWaitSec : 0.0;
            wait_sum.add(tf.startSec[s] - tf.enqueueSec[s] - bw);
            exec_sum.add(tf.finishSec[s] - tf.startSec[s]);
            if (s < last_stage)
                blocked_sum.add(tf.enqueueSec[s + 1] -
                                tf.finishSec[s]);
        }
    }
    for (const TimelineStageStats &st : timeline.stages)
        metricsReg.gauge("stage." + st.name + ".busy_sec")
            .add(st.busySec);
    if (cfg.maxBatch > 1) {
        metricsReg.counter("batch.dispatches")
            .add(timeline.batchCount);
        metricsReg.counter("batch.batched_frames")
            .add(timeline.batchedFrames);
        metricsReg.counter("batch.solo_frames")
            .add(timeline.soloFrames);
    }
    out.metrics = metricsReg.snapshot();

    // The deterministic virtual schedule as trace events, on the
    // GLOBAL virtual clock (t0 re-added): shard traces from a fleet
    // serve align without extra plumbing.
    if (HGPCN_TRACE_ENABLED()) {
        std::vector<std::int64_t> frame_ids(completed.size());
        std::vector<std::int64_t> sensor_ids(completed.size(), -1);
        for (std::size_t j = 0; j < completed.size(); ++j) {
            const std::size_t idx = completed[j]->index;
            frame_ids[j] =
                trace_ids ? trace_ids->frame[idx]
                          : static_cast<std::int64_t>(idx);
            if (trace_ids)
                sensor_ids[j] = trace_ids->sensor[idx];
        }
        std::vector<FrameFaultDirective> fault_by_j;
        if (faults != nullptr) {
            fault_by_j.reserve(completed.size());
            for (const auto &task : completed)
                fault_by_j.push_back(task->fault);
        }
        emitVirtualTrace(Tracer::global(), timeline, tl.stages,
                         paced ? t0 : 0.0, cfg.traceShard,
                         frame_ids, sensor_ids,
                         faults != nullptr ? &fault_by_j : nullptr);
    }

    // Assemble the report — counts come from the frozen snapshot
    // (the registry is authoritative), schedule detail from the
    // timeline.
    RuntimeReport &rep = out.report;
    rep.framesProcessed = out.metrics.countOf("frames.processed");
    rep.framesDropped = out.metrics.countOf("frames.dropped");
    rep.framesAbandoned = out.metrics.countOf("frames.abandoned");
    rep.framesFailed = out.metrics.countOf("frames.failed");
    rep.framesRetried = out.metrics.countOf("frames.retried");
    rep.framesDegraded = out.metrics.countOf("frames.degraded");
    rep.makespanSec = timeline.makespanSec;
    rep.sustainedFps =
        rep.makespanSec > 0.0
            ? static_cast<double>(rep.framesProcessed) /
                  rep.makespanSec
            : 0.0;
    rep.generationFps = generation_fps;
    // generation_fps is forced to 0 for unpaced runs, so batch mode
    // yields NotApplicable rather than a vacuous YES.
    rep.realTime =
        evaluateRealTime(rep.sustainedFps, rep.generationFps);
    rep.stages = timeline.stages;
    rep.configuredMaxBatch = cfg.maxBatch;
    rep.batchCount = timeline.batchCount;
    rep.batchedFrames = timeline.batchedFrames;
    rep.soloFrames = timeline.soloFrames;
    rep.meanBatchSize = timeline.meanBatchSize;
    rep.maxBatchSize = timeline.maxBatchSize;

    std::vector<double> latencies;
    latencies.reserve(timeline.processed);
    for (std::size_t j = 0; j < completed.size(); ++j) {
        const TimelineFrame &tf = timeline.frames[j];
        if (tf.dropped)
            continue;
        // A terminally failed frame delivers no output: counted in
        // framesFailed above, absent from completions and latency.
        if (completed[j]->fault.failed)
            continue;
        ProcessedFrame pf;
        pf.index = completed[j]->index;
        pf.latencySec = tf.latencySec;
        pf.doneSec = tf.doneSec;
        pf.result = std::move(completed[j]->result);
        latencies.push_back(tf.latencySec);
        rep.maxLatencySec = std::max(rep.maxLatencySec,
                                     tf.latencySec);
        rep.meanLatencySec += tf.latencySec;
        out.frames.push_back(std::move(pf));
    }
    if (!latencies.empty()) {
        rep.meanLatencySec /=
            static_cast<double>(latencies.size());
        std::sort(latencies.begin(), latencies.end());
        rep.p50LatencySec = percentileNearestRank(latencies, 0.50);
        rep.p95LatencySec = percentileNearestRank(latencies, 0.95);
        rep.p99LatencySec = percentileNearestRank(latencies, 0.99);
    }

    // Temporal-cache attribution, read back from the registry the
    // carry wrote into during the functional run.
    const std::uint64_t reused =
        out.metrics.countOf("temporal.nodes.reused");
    const std::uint64_t erected =
        out.metrics.countOf("temporal.nodes.erected");
    if (reused + erected > 0) {
        rep.temporalSubtreeReusePct =
            100.0 * static_cast<double>(reused) /
            static_cast<double>(reused + erected);
    }
    const std::uint64_t knn_inc =
        out.metrics.countOf("temporal.knn.incremental");
    const std::uint64_t knn_scratch =
        out.metrics.countOf("temporal.knn.scratch");
    if (knn_inc + knn_scratch > 0) {
        rep.temporalKnnHitPct =
            100.0 * static_cast<double>(knn_inc) /
            static_cast<double>(knn_inc + knn_scratch);
    }
    return out;
}

void
StreamRunner::requestStop()
{
    pipeline.requestStop();
}

} // namespace hgpcn
