#include "runtime/stage_pipeline.h"

#include <algorithm>
#include <map>
#include <thread>

#include "common/logging.h"
#include "obs/trace.h"

namespace hgpcn
{

StagePipeline::StagePipeline(std::vector<StageSpec> stage_specs,
                             const Config &config)
    : specs(std::move(stage_specs)), cfg(config)
{
    HGPCN_ASSERT(!specs.empty(), "pipeline needs at least one stage");
    HGPCN_ASSERT(cfg.queueCapacity >= 1,
                 "queue capacity must be >= 1");
    for (std::size_t s = 0; s < specs.size(); ++s) {
        const StageSpec &spec = specs[s];
        HGPCN_ASSERT(spec.stage != nullptr, "null stage");
        HGPCN_ASSERT(spec.workers >= 1, "stage '",
                     spec.stage->name(), "' needs >= 1 worker");
        if (spec.batch != nullptr && spec.batch->maxBatch > 1) {
            HGPCN_ASSERT(s + 1 == specs.size(),
                         "stage '", spec.stage->name(),
                         "' batches but is not the last stage");
            HGPCN_ASSERT(spec.workers == 1,
                         "batching stage '", spec.stage->name(),
                         "' must have exactly one worker");
        }
    }
}

std::vector<std::unique_ptr<FrameTask>>
StagePipeline::run(std::vector<std::unique_ptr<FrameTask>> tasks,
                   const FrameTaskCallback &on_task)
{
    const std::size_t n_stages = specs.size();

    // Restart contract: a stop belongs to the run it aborted, so a
    // new run starts fresh rather than inheriting staleness from a
    // previous requestStop().
    stopped.store(false);

    // Queue i feeds stage i; the last queue feeds the collector.
    {
        std::lock_guard<std::mutex> lock(queues_mu);
        queues.clear();
        for (std::size_t i = 0; i <= n_stages; ++i) {
            queues.push_back(std::make_shared<TaskQueue>(
                cfg.queueCapacity, OverloadPolicy::Block));
            queues.back()->instrument(
                &Tracer::global(),
                i < n_stages ? specs[i].stage->name() : "collect");
        }
        // A requestStop() that raced this entry (after the reset
        // above) targets *this* run: honor it.
        if (stopped.load()) {
            for (auto &q : queues)
                q->close();
        }
    }

    // Source: admit in order; a Closed push means stop was
    // requested and the rest of the stream is abandoned.
    std::thread source([this, &tasks] {
        for (auto &task : tasks) {
            if (stopped.load())
                break;
            task->stageCostSec.resize(specs.size(), 0.0);
            if (queues.front()->push(std::move(task)) ==
                PushOutcome::Closed) {
                break;
            }
        }
        queues.front()->close();
    });

    // Worker pools: the last worker leaving a stage closes its
    // output queue so downstream pools (and the collector) drain.
    std::vector<std::unique_ptr<std::atomic<std::size_t>>> alive;
    for (const StageSpec &spec : specs) {
        alive.push_back(std::make_unique<std::atomic<std::size_t>>(
            spec.workers));
    }
    std::vector<std::thread> workers;
    for (std::size_t s = 0; s < n_stages; ++s) {
        const bool batching = specs[s].batch != nullptr &&
                              specs[s].batch->maxBatch > 1;
        for (std::size_t w = 0; w < specs[s].workers; ++w) {
            if (batching) {
                // Single coalescing worker (asserted in the ctor):
                // assemble fixed admission-index groups, run each
                // through processBatch, forward members in order.
                workers.emplace_back([this, s, &alive] {
                    TaskQueue &in = *queues[s];
                    TaskQueue &out = *queues[s + 1];
                    BatchingStage assembler(specs[s].batch->maxBatch);
                    bool out_closed = false;
                    const auto serve =
                        [&](BatchingStage::Group group) {
                            std::vector<FrameTask *> ptrs;
                            ptrs.reserve(group.size());
                            for (auto &t : group)
                                ptrs.push_back(t.get());
                            std::vector<double> costs(group.size(),
                                                      0.0);
                            {
                                TraceIds ids;
                                ids.frame = static_cast<std::int64_t>(
                                    group.front()->index);
                                HGPCN_TRACE_WALL_SPAN(
                                    span,
                                    "host:" + specs[s].stage->name() +
                                        ":batch" +
                                        std::to_string(group.size()),
                                    specs[s].stage->resource(),
                                    "wall/" + specs[s].stage->name(),
                                    ids);
                                specs[s].stage->processBatch(ptrs,
                                                             costs);
                            }
                            for (std::size_t i = 0; i < group.size();
                                 ++i) {
                                group[i]->stageCostSec[s] = costs[i];
                            }
                            for (auto &t : group) {
                                if (out.push(std::move(t)) ==
                                    PushOutcome::Closed) {
                                    return false;
                                }
                            }
                            return true;
                        };
                    while (auto item = in.pop()) {
                        std::unique_ptr<FrameTask> task =
                            std::move(*item);
                        if (stopped.load())
                            continue; // drain-discard on shutdown
                        for (auto &group :
                             assembler.add(std::move(task))) {
                            if (!serve(std::move(group))) {
                                out_closed = true;
                                break;
                            }
                        }
                        if (out_closed)
                            break;
                    }
                    // Normal end of stream: the tail that never
                    // filled a group still runs, as partial batches.
                    // A stop discards it with the rest of the queue.
                    if (!out_closed && !stopped.load()) {
                        for (auto &group : assembler.flush()) {
                            if (!serve(std::move(group)))
                                break;
                        }
                    }
                    if (alive[s]->fetch_sub(1) == 1)
                        out.close();
                });
                continue;
            }
            workers.emplace_back([this, s, w, &alive] {
                TaskQueue &in = *queues[s];
                TaskQueue &out = *queues[s + 1];
                while (auto item = in.pop()) {
                    std::unique_ptr<FrameTask> task =
                        std::move(*item);
                    if (stopped.load())
                        continue; // drain-discard on shutdown
                    {
                        TraceIds ids;
                        ids.frame = static_cast<std::int64_t>(
                            task->index);
                        HGPCN_TRACE_WALL_SPAN(
                            span,
                            "host:" + specs[s].stage->name(),
                            specs[s].stage->resource(),
                            "wall/" + specs[s].stage->name() + "#" +
                                std::to_string(w),
                            ids);
                        task->stageCostSec[s] =
                            specs[s].stage->process(*task);
                    }
                    if (out.push(std::move(task)) ==
                        PushOutcome::Closed) {
                        break;
                    }
                }
                if (alive[s]->fetch_sub(1) == 1)
                    out.close();
            });
        }
    }

    // Collector (this thread): reorder to admission order and emit.
    std::vector<std::unique_ptr<FrameTask>> done;
    std::map<std::size_t, std::unique_ptr<FrameTask>> reorder;
    std::size_t next_emit = 0;
    const auto emit = [&](std::unique_ptr<FrameTask> task) {
        if (on_task)
            on_task(*task);
        done.push_back(std::move(task));
    };
    while (auto item = queues.back()->pop()) {
        std::unique_ptr<FrameTask> task = std::move(*item);
        reorder[task->index] = std::move(task);
        while (true) {
            auto it = reorder.find(next_emit);
            if (it == reorder.end())
                break;
            emit(std::move(it->second));
            reorder.erase(it);
            ++next_emit;
        }
    }
    // A truncated run leaves index gaps; flush what completed, in
    // order (std::map iterates ascending).
    for (auto &[index, task] : reorder) {
        (void)index;
        emit(std::move(task));
    }

    source.join();
    for (std::thread &w : workers)
        w.join();
    return done;
}

void
StagePipeline::requestStop()
{
    stopped.store(true);
    std::lock_guard<std::mutex> lock(queues_mu);
    for (auto &q : queues)
        q->close();
}

} // namespace hgpcn
