#include "runtime/virtual_timeline.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/logging.h"

namespace hgpcn
{
namespace
{

/** Time-weighted depth bookkeeping for one queue. */
struct QueueMeter
{
    double lastSec = 0.0;
    double weighted = 0.0;
    std::size_t peak = 0;

    /** Account the interval since the last change at depth @p d. */
    void
    advance(double now, std::size_t d)
    {
        weighted += static_cast<double>(d) * (now - lastSec);
        lastSec = now;
    }
};

struct Event
{
    double sec;
    std::uint64_t seq; //!< insertion order, breaks time ties
    /** Timeout: the oldest queued frame's batch-fill wait expired —
     * a pure wake-up; the dispatch gate re-checks state. May fire
     * spuriously after the frame already dispatched (harmless).
     * BatchComplete: `frame` holds a batch-registry index. */
    enum Kind { Arrival, Complete, Timeout, BatchComplete } kind;
    std::size_t frame;
    std::size_t stage; //!< Complete/Timeout/BatchComplete only
};

struct EventLater
{
    bool
    operator()(const Event &a, const Event &b) const
    {
        if (a.sec != b.sec)
            return a.sec > b.sec;
        return a.seq > b.seq;
    }
};

} // namespace

TimelineResult
simulateTimeline(const TimelineConfig &cfg,
                 const std::vector<double> &arrivals,
                 const std::vector<std::vector<double>> &costs,
                 const TimelineBatchCost &batch_cost)
{
    const std::size_t n_stages = cfg.stages.size();
    const std::size_t n = arrivals.size();
    HGPCN_ASSERT(n_stages >= 1, "timeline needs at least one stage");
    HGPCN_ASSERT(cfg.batch.maxBatch >= 1, "maxBatch must be >= 1");
    HGPCN_ASSERT(cfg.batch.timeoutSec >= 0.0,
                 "batch timeout must be >= 0");
    HGPCN_ASSERT(cfg.queueCapacity >= 1, "queue capacity must be >= 1");
    HGPCN_ASSERT(costs.size() == n, "one cost row per frame");
    for (std::size_t i = 1; i < n; ++i) {
        HGPCN_ASSERT(arrivals[i] >= arrivals[i - 1],
                     "arrivals must be non-decreasing");
    }

    TimelineResult out;
    out.frames.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        HGPCN_ASSERT(costs[i].size() == n_stages,
                     "one cost per stage per frame");
        out.frames[i].arrivalSec = arrivals[i];
        out.frames[i].startSec.assign(n_stages, 0.0);
        out.frames[i].finishSec.assign(n_stages, 0.0);
        out.frames[i].enqueueSec.assign(n_stages, 0.0);
    }

    // Device units: configured, defaulting to 1 per named resource.
    std::map<std::string, std::size_t> units = cfg.resourceUnits;
    for (const TimelineStageSpec &st : cfg.stages) {
        if (units.find(st.resource) == units.end())
            units[st.resource] = 1;
        HGPCN_ASSERT(units[st.resource] >= 1,
                     "resource '", st.resource, "' needs >= 1 unit");
    }
    std::map<std::string, std::size_t> free_units = units;

    std::vector<std::deque<std::size_t>> queue(n_stages);
    std::vector<QueueMeter> meter(n_stages);
    // Stage-s units held by a finished frame waiting for space in
    // queue s+1 (back-pressure).
    std::vector<std::deque<std::size_t>> held(n_stages);
    std::vector<double> busy(n_stages, 0.0);

    // Micro-batching state of the last stage.
    const std::size_t last = n_stages - 1;
    const bool batching = cfg.batch.maxBatch > 1;
    const double batch_timeout = cfg.batch.timeoutSec;
    std::vector<double> ready_at(batching ? n : 0, 0.0);
    std::vector<char> timeout_scheduled(batching ? n : 0, 0);
    // First time a frame was seen waiting on the dispatch gate with
    // a unit free (-1 = never). Pure attribution bookkeeping: turns
    // into TimelineFrame::batchWaitSec at dispatch, never read by
    // the scheduling decisions themselves.
    std::vector<double> form_start(batching ? n : 0, -1.0);

    std::priority_queue<Event, std::vector<Event>, EventLater> events;
    std::uint64_t seq = 0;

    std::size_t next_arrival = 0;
    bool pending = false;      //!< a frame is waiting at the source
    std::size_t pending_frame = 0;
    std::size_t in_flight = 0;
    double last_done = n > 0 ? arrivals[0] : 0.0;

    const auto scheduleArrival = [&](double now) {
        if (next_arrival < n) {
            events.push({std::max(arrivals[next_arrival], now), seq++,
                         Event::Arrival, next_arrival, 0});
            ++next_arrival;
        }
    };

    const auto enqueue = [&](std::size_t s, std::size_t f, double now) {
        meter[s].advance(now, queue[s].size());
        queue[s].push_back(f);
        meter[s].peak = std::max(meter[s].peak, queue[s].size());
        out.frames[f].enqueueSec[s] = now;
        if (batching && s == last)
            ready_at[f] = now; // batch-fill wait starts here
    };

    const auto dequeueFront = [&](std::size_t s, double now) {
        meter[s].advance(now, queue[s].size());
        const std::size_t f = queue[s].front();
        queue[s].pop_front();
        return f;
    };

    const auto dropFrame = [&](std::size_t f, double now) {
        out.frames[f].dropped = true;
        out.frames[f].droppedAtSec = now;
        ++out.dropped;
    };

    // Run admissions, blocked hand-offs and dispatches to fixpoint.
    const auto settle = [&](double now) {
        bool changed = true;
        while (changed) {
            changed = false;

            // 1. Blocked hand-offs, downstream first: freed space in
            // queue s+1 releases the oldest held unit of stage s.
            for (std::size_t s = n_stages - 1; s-- > 0;) {
                while (!held[s].empty() &&
                       queue[s + 1].size() < cfg.queueCapacity) {
                    const std::size_t f = held[s].front();
                    held[s].pop_front();
                    enqueue(s + 1, f, now);
                    ++free_units[cfg.stages[s].resource];
                    changed = true;
                }
            }

            // 2. Source admission of the pending frame, if any.
            if (pending) {
                const std::size_t f = pending_frame;
                const bool space = queue[0].size() < cfg.queueCapacity;
                const bool credit = cfg.maxInFlight == 0 ||
                                    in_flight < cfg.maxInFlight;
                if (space && credit) {
                    out.frames[f].admitSec = now;
                    enqueue(0, f, now);
                    ++in_flight;
                    pending = false;
                    scheduleArrival(now);
                    changed = true;
                } else if (cfg.policy == OverloadPolicy::DropNewest) {
                    dropFrame(f, now);
                    pending = false;
                    scheduleArrival(now);
                    changed = true;
                } else if (cfg.policy == OverloadPolicy::DropOldest) {
                    if (!queue[0].empty()) {
                        dropFrame(dequeueFront(0, now), now);
                        --in_flight;
                        out.frames[f].admitSec = now;
                        enqueue(0, f, now);
                        ++in_flight;
                    } else {
                        // Credit exhausted with nothing still queued:
                        // every admitted frame is already on a device,
                        // so the newcomer is the only evictable one.
                        dropFrame(f, now);
                    }
                    pending = false;
                    scheduleArrival(now);
                    changed = true;
                }
                // Block: stays pending until a state change frees
                // space or credit.
            }

            // 3. Dispatch, downstream first: drain work in flight
            // before starting new frames on a shared device.
            for (std::size_t s = n_stages; s-- > 0;) {
                const std::string &res = cfg.stages[s].resource;
                if (batching && s == last) {
                    // Coalesced dispatch: min(queued, maxBatch)
                    // frames FIFO on ONE unit, occupancy charged
                    // once with the shared batched cost.
                    while (!queue[s].empty() && free_units[res] > 0) {
                        const std::size_t front = queue[s].front();
                        const bool full =
                            queue[s].size() >= cfg.batch.maxBatch;
                        // `now >= ready_at + timeout` reuses the
                        // exact expression the Timeout event was
                        // scheduled with, so the wake-up always
                        // passes its own gate.
                        const bool waited_out =
                            batch_timeout <= 0.0 ||
                            now >= ready_at[front] + batch_timeout;
                        if (!full && !waited_out) {
                            if (!timeout_scheduled[front]) {
                                timeout_scheduled[front] = 1;
                                events.push(
                                    {ready_at[front] + batch_timeout,
                                     seq++, Event::Timeout, front,
                                     s});
                            }
                            // The queued frames that would join this
                            // dispatch are now waiting on FILL, not
                            // on a busy device — stamp the moment the
                            // formation wait became the only blocker.
                            const std::size_t would_join = std::min(
                                queue[s].size(), cfg.batch.maxBatch);
                            for (std::size_t i = 0; i < would_join;
                                 ++i) {
                                const std::size_t qf = queue[s][i];
                                if (form_start[qf] < 0.0)
                                    form_start[qf] = now;
                            }
                            break; // hold for fill or timeout
                        }
                        const std::size_t count = std::min(
                            queue[s].size(), cfg.batch.maxBatch);
                        std::vector<std::size_t> members;
                        members.reserve(count);
                        for (std::size_t i = 0; i < count; ++i)
                            members.push_back(dequeueFront(s, now));
                        --free_units[res];
                        // A batch of one is solo service by
                        // definition; >= 2 shares the backend's
                        // batched pass.
                        double cost;
                        if (members.size() == 1) {
                            cost = costs[members.front()][s];
                        } else if (batch_cost) {
                            cost = batch_cost(members);
                        } else {
                            cost = 0.0;
                            for (const std::size_t f : members)
                                cost += costs[f][s];
                        }
                        for (const std::size_t f : members) {
                            out.frames[f].startSec[s] = now;
                            out.frames[f].finishSec[s] = now + cost;
                            out.frames[f].batchSize = members.size();
                            out.frames[f].batchId =
                                static_cast<std::int64_t>(
                                    out.batches.size());
                            if (form_start[f] >= 0.0) {
                                out.frames[f].batchWaitSec =
                                    now - form_start[f];
                            }
                        }
                        busy[s] += cost; // ONE occupancy interval
                        events.push({now + cost, seq++,
                                     Event::BatchComplete,
                                     out.batches.size(), s});
                        TimelineBatch batch;
                        batch.startSec = now;
                        batch.finishSec = now + cost;
                        batch.members = std::move(members);
                        out.batches.push_back(std::move(batch));
                        changed = true;
                    }
                    continue;
                }
                while (!queue[s].empty() && free_units[res] > 0) {
                    const std::size_t f = dequeueFront(s, now);
                    --free_units[res];
                    const double cost = costs[f][s];
                    out.frames[f].startSec[s] = now;
                    out.frames[f].finishSec[s] = now + cost;
                    busy[s] += cost;
                    events.push({now + cost, seq++, Event::Complete,
                                 f, s});
                    changed = true;
                }
            }
        }
    };

    scheduleArrival(n > 0 ? arrivals[0] : 0.0);

    while (!events.empty()) {
        const Event ev = events.top();
        events.pop();
        const double now = ev.sec;

        if (ev.kind == Event::Arrival) {
            HGPCN_ASSERT(!pending, "source admissions are ordered");
            pending = true;
            pending_frame = ev.frame;
        } else if (ev.kind == Event::Timeout) {
            // Wake-up only: settle() below re-evaluates the batch
            // gate at `now`. Spurious after dispatch — harmless.
        } else if (ev.kind == Event::BatchComplete) {
            const std::size_t s = ev.stage;
            for (const std::size_t f : out.batches[ev.frame].members) {
                out.frames[f].doneSec = now;
                out.frames[f].latencySec =
                    now - out.frames[f].arrivalSec;
                ++out.processed;
                --in_flight;
            }
            ++free_units[cfg.stages[s].resource]; // the ONE unit
            last_done = std::max(last_done, now);
        } else {
            const std::size_t s = ev.stage;
            const std::size_t f = ev.frame;
            if (s + 1 == n_stages) {
                out.frames[f].doneSec = now;
                out.frames[f].latencySec =
                    now - out.frames[f].arrivalSec;
                ++out.processed;
                --in_flight;
                ++free_units[cfg.stages[s].resource];
                last_done = std::max(last_done, now);
            } else if (queue[s + 1].size() < cfg.queueCapacity) {
                enqueue(s + 1, f, now);
                ++free_units[cfg.stages[s].resource];
            } else {
                held[s].push_back(f); // unit stays occupied
            }
        }
        settle(now);
    }

    HGPCN_ASSERT(!pending && next_arrival == n && in_flight == 0,
                 "timeline drained with work outstanding");

    const double start = n > 0 ? arrivals[0] : 0.0;
    out.makespanSec = last_done - start;

    out.stages.resize(n_stages);
    for (std::size_t s = 0; s < n_stages; ++s) {
        TimelineStageStats &st = out.stages[s];
        st.name = cfg.stages[s].name;
        st.resource = cfg.stages[s].resource;
        st.units = units[st.resource];
        st.busySec = busy[s];
        meter[s].advance(last_done, queue[s].size());
        if (out.makespanSec > 0.0) {
            st.utilization =
                busy[s] / (static_cast<double>(st.units) *
                           out.makespanSec);
            st.meanQueueDepth = meter[s].weighted / out.makespanSec;
        }
        st.peakQueueDepth = meter[s].peak;
    }

    if (batching) {
        out.batchCount = out.batches.size();
        std::size_t total = 0;
        for (const TimelineBatch &batch : out.batches) {
            total += batch.members.size();
            out.maxBatchSize =
                std::max(out.maxBatchSize, batch.members.size());
            if (batch.members.size() >= 2)
                out.batchedFrames += batch.members.size();
            else
                ++out.soloFrames;
        }
        HGPCN_ASSERT(total == out.processed,
                     "every processed frame is in exactly one batch");
        if (out.batchCount > 0) {
            out.meanBatchSize = static_cast<double>(total) /
                                static_cast<double>(out.batchCount);
        }
    }
    return out;
}

} // namespace hgpcn
