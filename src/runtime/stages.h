/**
 * @file
 * The HgPCN engines as pluggable pipeline stages.
 *
 * The serial HgPcnSystem::processFrame flow of Fig. 4 split at its
 * two natural device boundaries:
 *
 *   OctreeBuildStage (CPU)     - Octree-build Unit: octree + table
 *   DownSampleStage  (FPGA)    - Down-sampling Unit: OIS-FPS to K
 *   InferenceStage   (backend) - whatever ExecutionBackend is
 *                                deployed (HgPCN DSU+FCU, Mesorasi,
 *                                PointACC, CPU reference, ...)
 *
 * Each stage wraps the existing engine without changing its cycle
 * model; the modeled per-stage cost it returns is exactly the term
 * that engine already contributed to the serial E2E latency. The
 * inference stage is backend-parameterized (src/backends): it
 * executes on the backend it is handed and occupies that backend's
 * device on the virtual timeline.
 */

#ifndef HGPCN_RUNTIME_STAGES_H
#define HGPCN_RUNTIME_STAGES_H

#include <string>

#include "backends/execution_backend.h"
#include "common/stats.h"
#include "core/frame_workspace.h"
#include "core/preprocessing_engine.h"
#include "runtime/stage.h"

namespace hgpcn
{

class TemporalPreprocessState;

/** Octree-build Unit on the host CPU. */
class OctreeBuildStage : public PipelineStage
{
  public:
    /**
     * @param engine Pre-processing engine (borrowed, not owned).
     * @param carry_state Optional cross-frame preprocessing cache
     *        (borrowed, core/temporal_preprocess.h): frames build
     *        their octree incrementally against the previous frame.
     *        Bit-identical outputs; the carry serializes this stage
     *        across workers (frames queue on its mutex).
     */
    explicit OctreeBuildStage(const PreprocessingEngine &engine,
                              std::string stage_resource = "cpu",
                              TemporalPreprocessState *carry_state =
                                  nullptr)
        : pre(engine), res(std::move(stage_resource)),
          carry(carry_state)
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override;

  private:
    const PreprocessingEngine &pre;
    std::string res;
    TemporalPreprocessState *carry;
    std::string nm = "octree-build";
};

/** Down-sampling Unit on the FPGA (OIS-FPS over the Octree-Table). */
class DownSampleStage : public PipelineStage
{
  public:
    /**
     * @param engine Pre-processing engine (borrowed).
     * @param input_points K, the PCN input size.
     * @param stage_resource Device name; keep equal to the
     *        InferenceStage's to model the single shared FPGA.
     * @param stream_workload Optional cross-frame aggregate the
     *        stage merges each frame's pre-processing counters into
     *        — workers run concurrently, hence the locked set.
     */
    DownSampleStage(const PreprocessingEngine &engine,
                    std::size_t input_points,
                    std::string stage_resource = "fpga",
                    ConcurrentStatSet *stream_workload = nullptr)
        : pre(engine), k(input_points), res(std::move(stage_resource)),
          workload(stream_workload)
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override;

  private:
    const PreprocessingEngine &pre;
    std::size_t k;
    std::string res;
    ConcurrentStatSet *workload;
    std::string nm = "down-sample";
};

/** Inference on the deployed execution backend. */
class InferenceStage : public PipelineStage
{
  public:
    /**
     * @param execution_backend Backend to execute on (borrowed;
     *        backends are thread-safe by contract).
     * @param stage_resource Device occupied on the virtual
     *        timeline; defaults to the backend's own resource.
     *        StreamRunner overrides it to model the shared HgPCN
     *        fabric ("fpga" / "fpga.fcu").
     * @param workspace_pool Optional pool of reusable frame
     *        workspaces (borrowed): each process() call leases one,
     *        giving the backend a warm scratch arena — the
     *        zero-alloc steady state (core/frame_workspace.h).
     * @param intra_op_threads Host threads splitting MLP rows per
     *        frame (>= 1; output is bit-identical at any value).
     */
    explicit InferenceStage(const ExecutionBackend &execution_backend,
                            std::string stage_resource = "",
                            WorkspacePool *workspace_pool = nullptr,
                            int intra_op_threads = 1)
        : be(execution_backend),
          res(stage_resource.empty() ? execution_backend.resource()
                                     : std::move(stage_resource)),
          workspaces(workspace_pool), intraOp(intra_op_threads)
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override;

    /** One ExecutionBackend::inferBatch pass over the coalesced
     * frames sharing a single leased workspace arena; per-frame
     * outputs bit-identical to process(), and costs[i] is frame i's
     * SOLO modeled seconds (the timeline charges the shared batched
     * occupancy separately via batchServiceSec). */
    void processBatch(std::span<FrameTask *const> tasks,
                      std::span<double> costs) const override;

    /** @return the backend this stage executes on. */
    const ExecutionBackend &backend() const { return be; }

  private:
    const ExecutionBackend &be;
    std::string res;
    WorkspacePool *workspaces;
    int intraOp;
    std::string nm = "inference";
};

} // namespace hgpcn

#endif // HGPCN_RUNTIME_STAGES_H
