/**
 * @file
 * The HgPCN engines as pluggable pipeline stages.
 *
 * The serial HgPcnSystem::processFrame flow of Fig. 4 split at its
 * two natural device boundaries:
 *
 *   OctreeBuildStage (CPU)   - Octree-build Unit: octree + table
 *   DownSampleStage  (FPGA)  - Down-sampling Unit: OIS-FPS to K
 *   InferenceStage   (FPGA)  - DSU + FCU: VEG + systolic compute
 *
 * Each stage wraps the existing engine without changing its cycle
 * model; the modeled per-stage cost it returns is exactly the term
 * that engine already contributed to the serial E2E latency.
 */

#ifndef HGPCN_RUNTIME_STAGES_H
#define HGPCN_RUNTIME_STAGES_H

#include <string>

#include "common/stats.h"
#include "core/inference_engine.h"
#include "core/preprocessing_engine.h"
#include "nn/pointnet2.h"
#include "runtime/stage.h"

namespace hgpcn
{

/** Octree-build Unit on the host CPU. */
class OctreeBuildStage : public PipelineStage
{
  public:
    /** @param engine Pre-processing engine (borrowed, not owned). */
    explicit OctreeBuildStage(const PreprocessingEngine &engine,
                              std::string stage_resource = "cpu")
        : pre(engine), res(std::move(stage_resource))
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override;

  private:
    const PreprocessingEngine &pre;
    std::string res;
    std::string nm = "octree-build";
};

/** Down-sampling Unit on the FPGA (OIS-FPS over the Octree-Table). */
class DownSampleStage : public PipelineStage
{
  public:
    /**
     * @param engine Pre-processing engine (borrowed).
     * @param input_points K, the PCN input size.
     * @param stage_resource Device name; keep equal to the
     *        InferenceStage's to model the single shared FPGA.
     * @param stream_workload Optional cross-frame aggregate the
     *        stage merges each frame's pre-processing counters into
     *        — workers run concurrently, hence the locked set.
     */
    DownSampleStage(const PreprocessingEngine &engine,
                    std::size_t input_points,
                    std::string stage_resource = "fpga",
                    ConcurrentStatSet *stream_workload = nullptr)
        : pre(engine), k(input_points), res(std::move(stage_resource)),
          workload(stream_workload)
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override;

  private:
    const PreprocessingEngine &pre;
    std::size_t k;
    std::string res;
    ConcurrentStatSet *workload;
    std::string nm = "down-sample";
};

/** Inference Engine (DSU + FCU) on the FPGA. */
class InferenceStage : public PipelineStage
{
  public:
    /** @param engine Inference engine and @p model network
     * (borrowed; PointNet2::run is const and thread-safe). */
    InferenceStage(const InferenceEngine &engine,
                   const PointNet2 &model,
                   std::string stage_resource = "fpga")
        : infer(engine), net(model), res(std::move(stage_resource))
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override;

  private:
    const InferenceEngine &infer;
    const PointNet2 &net;
    std::string res;
    std::string nm = "inference";
};

} // namespace hgpcn

#endif // HGPCN_RUNTIME_STAGES_H
