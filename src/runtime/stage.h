/**
 * @file
 * Pipeline stage abstraction of the streaming runtime.
 *
 * A PipelineStage is one station of the stage graph (docs/RUNTIME.md):
 * it performs the real functional work on a FrameTask (octree build,
 * OIS down-sampling, inference, ...) and returns the *modeled* cost
 * of that work in seconds. The cycle models stay authoritative for
 * time — wall-clock threads only carry the functional computation —
 * so a stage's return value, not its host runtime, is what the
 * virtual timeline schedules (see runtime/virtual_timeline.h).
 *
 * Stages must be thread-safe: the executor calls process() from a
 * pool of workers, potentially on several frames concurrently.
 */

#ifndef HGPCN_RUNTIME_STAGE_H
#define HGPCN_RUNTIME_STAGE_H

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/e2e_result.h"
#include "datasets/frame.h"
#include "sim/fault_plan.h"

namespace hgpcn
{

/** One frame moving through the stage graph. */
struct FrameTask
{
    /** Admission order, 0-based; results are emitted in this order. */
    std::size_t index = 0;

    /** The raw sensor frame, borrowed from the caller's stream —
     * run() blocks until every worker joins, so the stream outlives
     * every task. Null only in stage-stub tests. */
    const Frame *frame = nullptr;

    /** Filled progressively: build stage -> preprocess.tree/buildSec,
     * down-sample stage -> preprocess.sampled/dsu, inference stage
     * -> inference. */
    E2eResult result;

    /** Modeled seconds charged by each stage (indexed by stage). */
    std::vector<double> stageCostSec;

    /** Resolved fault outcome for this frame (serving/failover.h);
     * default is the clean directive, which changes nothing. The
     * down-sample stage honors the degraded budget, the inference
     * stage charges retries/backoff/slowdown as virtual time. */
    FrameFaultDirective fault;

    /** Virtual seconds the inference stage charged beyond the solo
     * service (retries, backoff, slowdown). Batched execution adds
     * each member's extra to the shared batch occupancy instead of
     * per-frame spans. */
    double faultExtraSec = 0.0;
};

/** One station of the pipeline. */
class PipelineStage
{
  public:
    virtual ~PipelineStage() = default;

    /** @return short stage name for reports ("octree-build", ...). */
    virtual const std::string &name() const = 0;

    /**
     * @return the device this stage occupies in the virtual
     * timeline ("cpu", "fpga", ...). Stages naming the same
     * resource serialize on its units — e.g. OIS down-sampling and
     * inference both run on the one FPGA of Fig. 4.
     */
    virtual const std::string &resource() const = 0;

    /**
     * Execute the stage on @p task (thread-safe).
     *
     * @return modeled seconds this stage's device is busy with the
     * frame — the cost the virtual timeline schedules.
     */
    virtual double process(FrameTask &task) const = 0;

    /**
     * Execute the stage on a coalesced batch of frames (thread-safe).
     *
     * @param tasks The batch, in admission-index order.
     * @param costs Out: per-frame SOLO modeled seconds — what each
     *        frame would cost served alone. These feed the per-frame
     *        stage attributions; the shared batched occupancy charged
     *        to the device is computed separately by the timeline
     *        (ExecutionBackend::batchServiceSec), so batching never
     *        perturbs per-frame modeled numbers.
     *
     * Default: serve each frame solo — stages with no batched
     * execution path compose with the batching pipeline unchanged.
     * Overrides must keep each frame's functional result
     * bit-identical to process() (see InferenceStage::processBatch).
     */
    virtual void processBatch(std::span<FrameTask *const> tasks,
                              std::span<double> costs) const
    {
        for (std::size_t i = 0; i < tasks.size(); ++i)
            costs[i] = process(*tasks[i]);
    }
};

/** A stage defined by a callable — test scaffolding and quick
 * experiments (e.g. a stand-in stage with a fixed modeled cost). */
class FunctionStage : public PipelineStage
{
  public:
    using Fn = std::function<double(FrameTask &)>;

    FunctionStage(std::string stage_name, std::string stage_resource,
                  Fn fn)
        : nm(std::move(stage_name)), res(std::move(stage_resource)),
          body(std::move(fn))
    {
    }

    const std::string &name() const override { return nm; }
    const std::string &resource() const override { return res; }
    double process(FrameTask &task) const override
    {
        return body(task);
    }

  private:
    std::string nm;
    std::string res;
    Fn body;
};

} // namespace hgpcn

#endif // HGPCN_RUNTIME_STAGE_H
