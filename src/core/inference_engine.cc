#include "core/inference_engine.h"

#include <utility>

namespace hgpcn
{

InferenceResult
InferenceEngine::run(const PointNet2 &model, const PointCloud &input,
                     const Octree *input_octree,
                     FrameWorkspace *workspace,
                     int intra_op_threads) const
{
    RunOptions opts;
    opts.centroid = cfg.centroid;
    opts.ds = cfg.ds;
    opts.seed = cfg.seed;
    opts.inputOctree = input_octree;
    opts.workspace = workspace;
    opts.intraOpThreads = intra_op_threads;
    return timeOutput(model.run(input, opts));
}

InferenceResult
InferenceEngine::timeOutput(RunOutput output) const
{
    InferenceResult result;
    result.output = std::move(output);

    // DSU: time every gather of the network on the pipeline model.
    // Brute-force gathers (if configured) produce no VEG traces; for
    // those the DSU degenerates to a full-range sort, which we
    // approximate by one trace whose last ring is the whole input.
    for (const GatherOp &op : result.output.trace.gathers) {
        DsuPipelineResult part;
        const DsuPipelineSim dsu(cfg.sim, /*octree_levels=*/
                                 op.traces.empty() ? 0 : 10);
        if (!op.traces.empty()) {
            part = dsu.run(op.traces, op.k);
        } else {
            std::vector<VegTrace> synth(
                op.centroids,
                VegTrace{0, 0,
                         static_cast<std::uint32_t>(op.inputPoints),
                         1});
            part = dsu.run(synth, op.k);
        }
        for (std::size_t s = 0; s < kStageCount; ++s)
            result.dsu.stageCycles[s] += part.stageCycles[s];
        result.dsu.pipelinedCycles += part.pipelinedCycles;
    }
    result.dsu.pipelinedSec =
        static_cast<double>(result.dsu.pipelinedCycles) /
        cfg.sim.fpga.acceleratorClockHz;

    // FCU: all GEMMs on the systolic model.
    const FcuSim fcu(cfg.sim);
    result.fcu = fcu.run(result.output.trace);
    return result;
}

} // namespace hgpcn
