/**
 * @file
 * Per-frame end-to-end result of the HgPCN platform.
 *
 * Lives in its own header (rather than hgpcn_system.h) because both
 * the serial system facade (core/hgpcn_system.h) and the streaming
 * runtime (runtime/) produce it: the runtime's pipeline stages fill
 * one E2eResult per frame as the frame traverses the stage graph.
 */

#ifndef HGPCN_CORE_E2E_RESULT_H
#define HGPCN_CORE_E2E_RESULT_H

#include "core/inference_engine.h"
#include "core/preprocessing_engine.h"

namespace hgpcn
{

/** End-to-end latency breakdown for one frame. */
struct E2eResult
{
    PreprocessResult preprocess;
    InferenceResult inference;

    /** @return end-to-end seconds for this frame. */
    double
    totalSec() const
    {
        return preprocess.totalSec() + inference.totalSec();
    }

    /** @return sustained frames/second at this latency. */
    double
    fps() const
    {
        const double t = totalSec();
        return t > 0.0 ? 1.0 / t : 0.0;
    }
};

} // namespace hgpcn

#endif // HGPCN_CORE_E2E_RESULT_H
