/**
 * @file
 * Per-frame end-to-end result of the HgPCN platform.
 *
 * Lives in its own header (rather than hgpcn_system.h) because both
 * the serial system facade (core/hgpcn_system.h) and the streaming
 * runtime (runtime/) produce it: the runtime's pipeline stages fill
 * one E2eResult per frame as the frame traverses the stage graph.
 *
 * The inference half is a BackendInference — the generic
 * output-plus-modeled-latency record every ExecutionBackend
 * produces (backends/execution_backend.h) — so a frame served by
 * the HgPCN engine, Mesorasi, PointACC or the CPU reference carries
 * the same result shape through the runtime and serving layers.
 */

#ifndef HGPCN_CORE_E2E_RESULT_H
#define HGPCN_CORE_E2E_RESULT_H

#include "backends/execution_backend.h"
#include "core/preprocessing_engine.h"

namespace hgpcn
{

/** End-to-end latency breakdown for one frame. */
struct E2eResult
{
    PreprocessResult preprocess;
    BackendInference inference;

    /** @return end-to-end seconds for this frame. */
    double
    totalSec() const
    {
        return preprocess.totalSec() + inference.totalSec();
    }

    /** @return sustained frames/second at this latency. */
    double
    fps() const
    {
        const double t = totalSec();
        return t > 0.0 ? 1.0 / t : 0.0;
    }
};

} // namespace hgpcn

#endif // HGPCN_CORE_E2E_RESULT_H
