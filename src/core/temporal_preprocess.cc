#include "core/temporal_preprocess.h"

#include "common/logging.h"
#include "core/frame_workspace.h"

namespace hgpcn
{

TemporalPreprocessState::TemporalPreprocessState(const Config &config)
    : cfg(config), pool(std::make_shared<BundlePool>())
{
}

std::shared_ptr<PreprocessBundle>
TemporalPreprocessState::leaseBundle(
    const std::shared_ptr<BundlePool> &pool)
{
    PreprocessBundle *bundle = nullptr;
    {
        std::lock_guard<std::mutex> lock(pool->mu);
        if (pool->free_list.empty()) {
            pool->owned.push_back(
                std::make_unique<PreprocessBundle>());
            FrameWorkspace::noteGrowth();
            bundle = pool->owned.back().get();
        } else {
            // FIFO: bundles come back in frame order (results are
            // released in stream order), so re-running the same
            // stream hands frame i the bundle already sized for it
            // — the steady-state zero-growth contract.
            bundle = pool->free_list.front();
            pool->free_list.erase(pool->free_list.begin());
        }
    }
    // The deleter holds the pool alive, so bundles may outlive the
    // state that leased them (results escaping a stream run).
    return std::shared_ptr<PreprocessBundle>(
        bundle, [pool](PreprocessBundle *b) {
            std::lock_guard<std::mutex> lock(pool->mu);
            pool->free_list.push_back(b);
        });
}

std::shared_ptr<PreprocessBundle>
TemporalPreprocessState::processFrame(const PointCloud &raw)
{
    HGPCN_ASSERT(!raw.empty(), "cannot preprocess an empty frame");
    std::lock_guard<std::mutex> lock(mu);

    std::shared_ptr<PreprocessBundle> bundle = leaseBundle(pool);
    HGPCN_ASSERT(bundle.get() != prev.get(),
                 "pool leased the carried frame's bundle");

    const Octree *prev_tree =
        (cfg.temporalCache && prev != nullptr) ? &prev->tree : nullptr;
    const bool incremental =
        builder.update(raw, prev_tree, cfg.octree, bundle->tree);

    ++st.frames;
    if (incremental) {
        ++st.octreeHits;
        const PointDelta &delta = builder.delta();
        st.retainedPoints += delta.retained();
        st.insertedPoints += delta.insertedNew.size();
        st.evictedPoints += delta.evictedOld.size();
        st.nodesReused += builder.nodesReused();
        st.nodesErected += builder.nodesErected();
    } else {
        ++st.octreeMisses;
    }

    if (cfg.cacheIndices) {
        const Octree &tree = bundle->tree;
        std::span<const Vec3> positions =
            tree.reorderedCloud().positions();

        bool knn_incremental = false;
        if (incremental && prev != nullptr && prev->rawKnnBuilt) {
            knn_incremental = bundle->rawKnn.rebuildFrom(
                prev->rawKnn, positions, builder.delta());
        }
        if (!knn_incremental)
            bundle->rawKnn.rebuild(positions, cfg.knn);
        bundle->rawKnnBuilt = true;
        ++(knn_incremental ? st.knnIncremental : st.knnScratch);

        const int level =
            VoxelGrid::autoLevel(positions.size(), tree.depth());
        bool occ_incremental = false;
        if (incremental && prev != nullptr &&
            prev->rawOccLevel == level) {
            occ_incremental = patchOccupiedCells(
                tree, level, prev->tree, prev->rawOcc,
                builder.delta(), bundle->rawOcc);
        }
        if (!occ_incremental)
            buildOccupiedCells(tree, level, bundle->rawOcc);
        bundle->rawOccLevel = level;
        ++(occ_incremental ? st.occIncremental : st.occScratch);
    } else {
        bundle->rawKnnBuilt = false;
        bundle->rawOccLevel = -1;
    }

    prev = bundle;
    return bundle;
}

void
TemporalPreprocessState::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    prev.reset();
}

TemporalPreprocessState::Stats
TemporalPreprocessState::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

} // namespace hgpcn
