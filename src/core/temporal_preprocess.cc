#include "core/temporal_preprocess.h"

#include "common/logging.h"
#include "core/frame_workspace.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hgpcn
{
namespace
{

/** One frame's cache outcome, distilled for the metrics mirror. */
struct FrameAttribution
{
    bool incremental = false;
    std::uint64_t nodesReused = 0;
    std::uint64_t nodesErected = 0;
    std::uint64_t retained = 0;
    std::uint64_t inserted = 0;
    std::uint64_t evicted = 0;
    bool knnIncremental = false;
    bool occIncremental = false;
    bool indicesCached = false;
};

/** Mirror one frame's outcome into "temporal.*" counters. */
void
recordMetrics(MetricsRegistry &reg, const FrameAttribution &fa)
{
    reg.counter("temporal.frames").add();
    reg.counter(fa.incremental ? "temporal.octree.hits"
                               : "temporal.octree.misses")
        .add();
    if (fa.incremental) {
        reg.counter("temporal.nodes.reused").add(fa.nodesReused);
        reg.counter("temporal.nodes.erected").add(fa.nodesErected);
        reg.counter("temporal.points.retained").add(fa.retained);
        reg.counter("temporal.points.inserted").add(fa.inserted);
        reg.counter("temporal.points.evicted").add(fa.evicted);
    }
    if (fa.indicesCached) {
        reg.counter(fa.knnIncremental ? "temporal.knn.incremental"
                                      : "temporal.knn.scratch")
            .add();
        reg.counter(fa.occIncremental ? "temporal.occ.incremental"
                                      : "temporal.occ.scratch")
            .add();
    }
}

/** Per-frame attribution samples on the wall clock: the "why is
 *  subtree reuse stuck" question, readable frame by frame from one
 *  trace instead of a terminal aggregate. */
void
recordTrace(std::uint64_t frame_no, std::int64_t shard,
            const FrameAttribution &fa)
{
#ifndef HGPCN_TRACING_DISABLED
    Tracer &tracer = Tracer::global();
    if (!tracer.enabled())
        return;
    const std::string track =
        shard >= 0 ? "shard" + std::to_string(shard) + "/temporal"
                   : "runner/temporal";
    const double now = tracer.wallNowSec();
    const std::uint64_t touched = fa.nodesReused + fa.nodesErected;
    const double reuse_pct =
        touched > 0 ? 100.0 * static_cast<double>(fa.nodesReused) /
                          static_cast<double>(touched)
                    : 0.0;
    tracer.counter(TraceClock::Wall, now, "subtree-reuse-pct", track,
                   reuse_pct);
    if (fa.indicesCached) {
        tracer.counter(TraceClock::Wall, now, "knn-cache-hit", track,
                       fa.knnIncremental ? 1.0 : 0.0);
    }
    TraceIds ids;
    ids.frame = static_cast<std::int64_t>(frame_no);
    ids.shard = shard;
    tracer.instant(TraceClock::Wall, now,
                   fa.incremental ? "octree:incremental"
                                  : "octree:scratch",
                   "temporal", track, ids);
#else
    (void)frame_no;
    (void)shard;
    (void)fa;
#endif
}

} // namespace

TemporalPreprocessState::TemporalPreprocessState(const Config &config)
    : cfg(config), pool(std::make_shared<BundlePool>())
{
}

std::shared_ptr<PreprocessBundle>
TemporalPreprocessState::leaseBundle(
    const std::shared_ptr<BundlePool> &pool)
{
    PreprocessBundle *bundle = nullptr;
    {
        std::lock_guard<std::mutex> lock(pool->mu);
        if (pool->free_list.empty()) {
            pool->owned.push_back(
                std::make_unique<PreprocessBundle>());
            FrameWorkspace::noteGrowth();
            bundle = pool->owned.back().get();
        } else {
            // FIFO: bundles come back in frame order (results are
            // released in stream order), so re-running the same
            // stream hands frame i the bundle already sized for it
            // — the steady-state zero-growth contract.
            bundle = pool->free_list.front();
            pool->free_list.erase(pool->free_list.begin());
        }
    }
    // The deleter holds the pool alive, so bundles may outlive the
    // state that leased them (results escaping a stream run).
    return std::shared_ptr<PreprocessBundle>(
        bundle, [pool](PreprocessBundle *b) {
            std::lock_guard<std::mutex> lock(pool->mu);
            pool->free_list.push_back(b);
        });
}

std::shared_ptr<PreprocessBundle>
TemporalPreprocessState::processFrame(const PointCloud &raw)
{
    HGPCN_ASSERT(!raw.empty(), "cannot preprocess an empty frame");
    std::lock_guard<std::mutex> lock(mu);

    std::shared_ptr<PreprocessBundle> bundle = leaseBundle(pool);
    HGPCN_ASSERT(bundle.get() != prev.get(),
                 "pool leased the carried frame's bundle");

    const Octree *prev_tree =
        (cfg.temporalCache && prev != nullptr) ? &prev->tree : nullptr;
    const bool incremental =
        builder.update(raw, prev_tree, cfg.octree, bundle->tree);

    FrameAttribution fa;
    fa.incremental = incremental;

    ++st.frames;
    if (incremental) {
        ++st.octreeHits;
        const PointDelta &delta = builder.delta();
        fa.retained = delta.retained();
        fa.inserted = delta.insertedNew.size();
        fa.evicted = delta.evictedOld.size();
        fa.nodesReused = builder.nodesReused();
        fa.nodesErected = builder.nodesErected();
        st.retainedPoints += fa.retained;
        st.insertedPoints += fa.inserted;
        st.evictedPoints += fa.evicted;
        st.nodesReused += fa.nodesReused;
        st.nodesErected += fa.nodesErected;
    } else {
        ++st.octreeMisses;
    }

    if (cfg.cacheIndices) {
        const Octree &tree = bundle->tree;
        std::span<const Vec3> positions =
            tree.reorderedCloud().positions();

        bool knn_incremental = false;
        if (incremental && prev != nullptr && prev->rawKnnBuilt) {
            knn_incremental = bundle->rawKnn.rebuildFrom(
                prev->rawKnn, positions, builder.delta());
        }
        if (!knn_incremental)
            bundle->rawKnn.rebuild(positions, cfg.knn);
        bundle->rawKnnBuilt = true;
        ++(knn_incremental ? st.knnIncremental : st.knnScratch);

        const int level =
            VoxelGrid::autoLevel(positions.size(), tree.depth());
        bool occ_incremental = false;
        if (incremental && prev != nullptr &&
            prev->rawOccLevel == level) {
            occ_incremental = patchOccupiedCells(
                tree, level, prev->tree, prev->rawOcc,
                builder.delta(), bundle->rawOcc);
        }
        if (!occ_incremental)
            buildOccupiedCells(tree, level, bundle->rawOcc);
        bundle->rawOccLevel = level;
        ++(occ_incremental ? st.occIncremental : st.occScratch);
        fa.indicesCached = true;
        fa.knnIncremental = knn_incremental;
        fa.occIncremental = occ_incremental;
    } else {
        bundle->rawKnnBuilt = false;
        bundle->rawOccLevel = -1;
    }

    if (metrics != nullptr)
        recordMetrics(*metrics, fa);
    recordTrace(st.frames, obsShard, fa);

    prev = bundle;
    return bundle;
}

void
TemporalPreprocessState::setObservability(MetricsRegistry *reg,
                                          std::int64_t shard)
{
    std::lock_guard<std::mutex> lock(mu);
    metrics = reg;
    obsShard = shard;
}

void
TemporalPreprocessState::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    prev.reset();
}

TemporalPreprocessState::Stats
TemporalPreprocessState::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

} // namespace hgpcn
