/**
 * @file
 * Cross-frame preprocessing cache (temporal coherence).
 *
 * Consecutive frames of a drive share most of their points, so the
 * per-frame preprocessing indices — the Morton octree, the
 * spatial-hash KNN buckets over the reordered cloud and the
 * VoxelGrid occupancy list — are mostly identical from frame to
 * frame. TemporalPreprocessState carries the previous frame's
 * indices and rebuilds the next frame's incrementally:
 *
 *  - the octree via IncrementalOctreeBuilder (code-array diff +
 *    dirty-subtree re-erection, octree/incremental_octree.h);
 *  - the KNN buckets via SpatialHashKnn::rebuildFrom (dirty cells
 *    re-bucketed, clean cells remapped);
 *  - the occupancy list via patchOccupiedCells (clean entries
 *    remapped, dirty cells re-read from the new tree).
 *
 * All three are bit-identical to their from-scratch builds — the
 * scratch path stays in the tree as the oracle and every cache
 * falls back to it when its preconditions fail — so enabling the
 * cache changes host wall-clock only; sampled outputs and modeled
 * paper numbers are unchanged by construction.
 *
 * Storage is pooled: frames lease a PreprocessBundle (octree +
 * indices) whose backing vectors are reused once every in-flight
 * frame has a warmed bundle, keeping the steady state free of
 * arena-backing allocation (growth counted via
 * FrameWorkspace::noteGrowth, pinned by tests/test_runtime.cc).
 * Thread safety: processFrame() serializes under a mutex; frames
 * arriving out of order only lower the hit rate, never change
 * outputs.
 */

#ifndef HGPCN_CORE_TEMPORAL_PREPROCESS_H
#define HGPCN_CORE_TEMPORAL_PREPROCESS_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "knn/spatial_hash_knn.h"
#include "octree/incremental_octree.h"
#include "octree/octree.h"
#include "octree/voxel_grid.h"

namespace hgpcn
{

class MetricsRegistry;

/**
 * One frame's preprocessing indices, leased from the state's pool.
 * The octree is always valid after processFrame(); the raw-cloud
 * KNN index and occupancy list only when cacheIndices is on.
 */
struct PreprocessBundle
{
    Octree tree;
    SpatialHashKnn rawKnn;     //!< over tree.reorderedCloud()
    bool rawKnnBuilt = false;
    std::vector<OccupiedCell> rawOcc; //!< occupancy at rawOccLevel
    int rawOccLevel = -1;      //!< -1 = not built
};

/** Per-stream carried preprocessing state; see file comment. */
class TemporalPreprocessState
{
  public:
    /** Cache policy. */
    struct Config
    {
        /** Octree build parameters (must match the engine's). */
        Octree::Config octree;
        /** Master switch: diff frames and update incrementally.
         * Off = every frame builds from scratch (still pooled). */
        bool temporalCache = true;
        /** Maintain the raw-cloud KNN buckets and occupancy list
         * across frames alongside the octree. */
        bool cacheIndices = true;
        /** KNN index parameters for the cached buckets. */
        SpatialHashKnn::Config knn;
    };

    /** Cumulative cache telemetry (monotone counters). */
    struct Stats
    {
        std::uint64_t frames = 0;
        std::uint64_t octreeHits = 0;   //!< incremental updates
        std::uint64_t octreeMisses = 0; //!< scratch rebuilds
        std::uint64_t retainedPoints = 0;
        std::uint64_t insertedPoints = 0;
        std::uint64_t evictedPoints = 0;
        std::uint64_t nodesReused = 0;
        std::uint64_t nodesErected = 0;
        std::uint64_t knnIncremental = 0;
        std::uint64_t knnScratch = 0;
        std::uint64_t occIncremental = 0;
        std::uint64_t occScratch = 0;
    };

    explicit TemporalPreprocessState(const Config &config);

    /**
     * Build the frame's indices, reusing the previous frame's where
     * the diff allows. The returned bundle stays valid as long as
     * the caller holds it (its storage returns to the pool on
     * release, possibly after this state is destroyed).
     */
    std::shared_ptr<PreprocessBundle> processFrame(const PointCloud &raw);

    /** Drop the carried frame (the next frame builds from scratch). */
    void reset();

    /**
     * Attach an observability sink: every processFrame() mirrors its
     * cache telemetry into "temporal.*" counters of @p metrics and —
     * when the global Tracer is recording — emits per-frame
     * subtree-reuse % and KNN-hit counter samples on the wall clock,
     * tagged with @p shard. Pass nullptr to detach. Call while no
     * frames are in flight.
     */
    void setObservability(MetricsRegistry *metrics,
                          std::int64_t shard = -1);

    /** @return cache telemetry snapshot. */
    Stats stats() const;

    /** @return configured policy. */
    const Config &config() const { return cfg; }

  private:
    /** Thread-safe bundle pool; may outlive the state (leases hold
     * a shared_ptr to it). */
    struct BundlePool
    {
        std::mutex mu;
        std::vector<std::unique_ptr<PreprocessBundle>> owned;
        std::vector<PreprocessBundle *> free_list;
    };

    static std::shared_ptr<PreprocessBundle>
    leaseBundle(const std::shared_ptr<BundlePool> &pool);

    Config cfg;
    std::shared_ptr<BundlePool> pool;

    mutable std::mutex mu;
    IncrementalOctreeBuilder builder;
    std::shared_ptr<PreprocessBundle> prev; //!< keeps prev frame alive
    Stats st;
    MetricsRegistry *metrics = nullptr; //!< optional telemetry mirror
    std::int64_t obsShard = -1;         //!< shard tag for trace events
};

} // namespace hgpcn

#endif // HGPCN_CORE_TEMPORAL_PREPROCESS_H
