#include "core/hgpcn_system.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{

HgPcnSystem::HgPcnSystem(const Config &config, const PointNet2Spec &spec)
    : cfg(config), net(std::make_unique<PointNet2>(spec)),
      preproc(config.preprocess), infer(config.inference),
      be(std::make_unique<HgpcnBackend>(infer, *net))
{
    if (spec.inputPoints != 0)
        cfg.inputPoints = spec.inputPoints;
}

E2eResult
HgPcnSystem::processFrame(const PointCloud &raw) const
{
    E2eResult result;
    result.preprocess = preproc.process(raw, cfg.inputPoints);

    // The sampled input is normalized for the network (radius-based
    // layers assume unit-cube coordinates), then inference reuses
    // the octree only when coordinates were left untouched — after
    // normalization a fresh level-0 octree is built inside the
    // model, still costed in the trace.
    PointCloud input = result.preprocess.sampled;
    input.normalizeToUnitCube();
    // Serial calls reuse the system's workspace pool: frame 2
    // onwards runs allocation-free in the model (thread-safe — the
    // pool hands concurrent callers distinct arenas).
    WorkspacePool::Lease ws = serialWorkspaces.acquire();
    result.inference = be->infer(input, ws.get());
    return result;
}

RuntimeResult
HgPcnSystem::runStream(const std::vector<Frame> &frames,
                       StreamRunner::Config runner_cfg) const
{
    if (runner_cfg.inputPoints == 0)
        runner_cfg.inputPoints = cfg.inputPoints;
    StreamRunner runner(preproc, *be, runner_cfg);
    return runner.run(frames);
}

StreamReport
HgPcnSystem::processStream(const std::vector<Frame> &frames) const
{
    HGPCN_ASSERT(!frames.empty(), "empty stream");
    StreamReport report;
    report.frames = frames.size();

    // Single-worker, batch-admission runner: one CPU builds octrees
    // back to back while the one FPGA down-samples and infers —
    // its virtual schedule is exactly the historical two-stage
    // pipeline recurrence.
    const RuntimeResult rt = runStream(
        frames, StreamRunner::compat(frames.size(), cfg.inputPoints));
    HGPCN_ASSERT(rt.frames.size() == frames.size(),
                 "compat runner must process every frame");

    double total = 0.0;
    for (const ProcessedFrame &pf : rt.frames) {
        const double t = pf.result.totalSec();
        total += t;
        report.maxLatencySec = std::max(report.maxLatencySec, t);
    }
    report.meanLatencySec = total / static_cast<double>(frames.size());
    report.meanFps = report.meanLatencySec > 0.0
                         ? 1.0 / report.meanLatencySec
                         : 0.0;
    report.pipelinedFps = rt.report.sustainedFps;

    // Sensor rate from the shared derivation (fatal on
    // non-monotonic stamps, 0.0 for unstamped or single-frame
    // streams — the verdicts below are then NotApplicable, not a
    // vacuous YES).
    report.generationFps = streamGenerationFps(frames);
    report.realTime =
        evaluateRealTime(report.meanFps, report.generationFps);
    report.pipelinedRealTime =
        evaluateRealTime(report.pipelinedFps, report.generationFps);
    return report;
}

} // namespace hgpcn
