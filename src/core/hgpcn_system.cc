#include "core/hgpcn_system.h"

#include <algorithm>

#include "common/logging.h"

namespace hgpcn
{

HgPcnSystem::HgPcnSystem(const Config &config, const PointNet2Spec &spec)
    : cfg(config), net(std::make_unique<PointNet2>(spec)),
      preproc(config.preprocess), infer(config.inference)
{
    if (spec.inputPoints != 0)
        cfg.inputPoints = spec.inputPoints;
}

E2eResult
HgPcnSystem::processFrame(const PointCloud &raw) const
{
    E2eResult result;
    result.preprocess = preproc.process(raw, cfg.inputPoints);

    // The sampled input is normalized for the network (radius-based
    // layers assume unit-cube coordinates), then inference reuses
    // the octree only when coordinates were left untouched — after
    // normalization a fresh level-0 octree is built inside the
    // model, still costed in the trace.
    PointCloud input = result.preprocess.sampled;
    input.normalizeToUnitCube();
    result.inference = infer.run(*net, input, nullptr);
    return result;
}

StreamReport
HgPcnSystem::processStream(const std::vector<Frame> &frames) const
{
    HGPCN_ASSERT(!frames.empty(), "empty stream");
    StreamReport report;
    report.frames = frames.size();

    double total = 0.0;
    // Two-stage pipeline model: stage A = CPU octree build, stage B
    // = FPGA down-sampling + inference. Frame i's stage B starts
    // once both its own build and frame i-1's stage B are done.
    double cpu_free = 0.0;
    double fpga_done = 0.0;
    for (const Frame &frame : frames) {
        const E2eResult r = processFrame(frame.cloud);
        const double t = r.totalSec();
        total += t;
        report.maxLatencySec = std::max(report.maxLatencySec, t);

        const double build = r.preprocess.octreeBuildSec;
        const double fpga = r.preprocess.dsu.totalSec() +
                            r.inference.totalSec();
        cpu_free += build;
        fpga_done = std::max(fpga_done, cpu_free) + fpga;
    }
    report.meanLatencySec = total / static_cast<double>(frames.size());
    report.meanFps = report.meanLatencySec > 0.0
                         ? 1.0 / report.meanLatencySec
                         : 0.0;
    report.pipelinedFps =
        fpga_done > 0.0
            ? static_cast<double>(frames.size()) / fpga_done
            : 0.0;

    if (frames.size() >= 2) {
        const double span =
            frames.back().timestamp - frames.front().timestamp;
        if (span > 0.0) {
            report.generationFps =
                static_cast<double>(frames.size() - 1) / span;
        }
    }
    report.realTime = report.meanFps >= report.generationFps;
    report.pipelinedRealTime =
        report.pipelinedFps >= report.generationFps;
    return report;
}

} // namespace hgpcn
