/**
 * @file
 * HgPCN Inference Engine (paper Section VI).
 *
 * DSU + FCU on the FPGA: the Data Structuring Unit serves every
 * neighbor-gathering request of the PCN through Voxel-Expanded
 * Gathering, buffering input feature maps for the Feature
 * Computation Unit (the systolic DLA). The functional result comes
 * from the real PointNet++ execution with VEG data structuring; the
 * latency comes from the DSU pipeline and FCU cycle models, which
 * overlap through the BF-stage buffer.
 */

#ifndef HGPCN_CORE_INFERENCE_ENGINE_H
#define HGPCN_CORE_INFERENCE_ENGINE_H

#include "nn/pointnet2.h"
#include "sim/dsu_pipeline.h"
#include "sim/fcu_dla.h"
#include "sim/sim_config.h"

namespace hgpcn
{

class FrameWorkspace;

/** Result of one inference pass on the Inference Engine. */
struct InferenceResult
{
    /** Network outputs (logits, labels) and the execution trace. */
    RunOutput output;

    /** DSU latency, accumulated over every gather of the network. */
    DsuPipelineResult dsu;

    /** FCU latency over every GEMM of the network. */
    FcuResult fcu;

    /** @return end-to-end seconds; DSU and FCU overlap through the
     * input-feature-map buffer, so the slower unit dominates. */
    double
    totalSec() const
    {
        const double dsu_sec = dsu.pipelinedSec;
        const double fcu_sec = fcu.totalSec();
        return dsu_sec > fcu_sec ? dsu_sec : fcu_sec;
    }
};

/** The FPGA inference back end. */
class InferenceEngine
{
  public:
    /** Engine parameters. */
    struct Config
    {
        /** Platform timing parameters. */
        SimConfig sim = SimConfig::defaults();
        /** Data structuring flavor (paper default: exact VEG). */
        DsMethod ds = DsMethod::Veg;
        /** Central-point selection (random matches the Fig. 14
         * comparison protocol). */
        CentroidMethod centroid = CentroidMethod::Random;
        /** Inference seed (centroid picks). */
        std::uint64_t seed = 7;
    };

    /** Create with default configuration. */
    InferenceEngine() : InferenceEngine(Config{}) {}

    explicit InferenceEngine(const Config &config) : cfg(config) {}

    /**
     * Run @p model over @p input on the engine.
     *
     * @param model The PCN to execute.
     * @param input Down-sampled input cloud (K points).
     * @param input_octree Optional pre-processing octree to reuse
     *        for the first SA level's VEG (input must be its
     *        reordered cloud).
     * @param workspace Optional reusable scratch arena
     *        (core/frame_workspace.h) — zero-alloc steady state.
     * @param intra_op_threads Host threads splitting MLP rows
     *        (>= 1; bit-identical output at any value).
     */
    InferenceResult run(const PointNet2 &model, const PointCloud &input,
                        const Octree *input_octree = nullptr,
                        FrameWorkspace *workspace = nullptr,
                        int intra_op_threads = 1) const;

    /**
     * Attach the DSU/FCU timing to an already-computed functional
     * output — the cycle-model half of run(). The batched backend
     * path executes several frames functionally in one pass
     * (PointNet2::runBatch) and then times each frame's trace here,
     * so per-frame modeled numbers match solo run() exactly.
     */
    InferenceResult timeOutput(RunOutput output) const;

    /** @return configured parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg;
};

} // namespace hgpcn

#endif // HGPCN_CORE_INFERENCE_ENGINE_H
