#include "core/preprocessing_engine.h"

#include "common/logging.h"

namespace hgpcn
{

PreprocessResult
PreprocessingEngine::process(const PointCloud &raw, std::size_t k) const
{
    HGPCN_ASSERT(raw.size() >= k, "frame smaller than K: ", raw.size(),
                 " < ", k);

    PreprocessResult result;

    // Octree-build Unit (CPU): build + host-memory pre-configuration
    // in one pass, then serialize the Octree-Table.
    result.tree = std::make_shared<Octree>(
        Octree::build(raw, cfg.octree));
    Octree &tree = *result.tree;

    const OctreeTable table = OctreeTable::fromOctree(tree);
    result.octreeTableBytes = table.sizeBytes();

    const DeviceModel host(cfg.hostCpu);
    result.octreeBuildSec = host.octreeBuildSec(tree.buildStats());

    // Down-sampling Unit (FPGA): OIS-FPS over the table.
    OisFpsSampler::Config sampler_cfg;
    sampler_cfg.octree = cfg.octree;
    sampler_cfg.seed = cfg.seed;
    const OisFpsSampler sampler(sampler_cfg);
    SampleResult sample = sampler.sampleWithTree(tree, k);

    const DownsamplingUnitSim dsu_sim(cfg.sim);
    result.dsu = dsu_sim.run(sample.stats, k, result.octreeTableBytes);

    // Materialize the sampled input cloud (pick order preserved).
    result.sampled = tree.reorderedCloud().gather(sample.spt);
    result.spt = std::move(sample.spt);
    result.stats = std::move(sample.stats);
    result.stats.merge(tree.buildStats());
    return result;
}

} // namespace hgpcn
