#include "core/preprocessing_engine.h"

#include "common/logging.h"

namespace hgpcn
{

PreprocessResult
PreprocessingEngine::process(const PointCloud &raw, std::size_t k) const
{
    // Fail before the octree build, not after it (sampleStage
    // re-checks for callers driving the stages separately).
    HGPCN_ASSERT(raw.size() >= k, "frame smaller than K: ", raw.size(),
                 " < ", k);
    PreprocessResult result = buildStage(raw);
    sampleStage(result, k);
    return result;
}

PreprocessResult
PreprocessingEngine::buildStage(const PointCloud &raw) const
{
    PreprocessResult result;

    // Octree-build Unit (CPU): build + host-memory pre-configuration
    // in one pass, then serialize the Octree-Table.
    result.tree = std::make_shared<Octree>(
        Octree::build(raw, cfg.octree));
    Octree &tree = *result.tree;

    const OctreeTable table = OctreeTable::fromOctree(tree);
    result.octreeTableBytes = table.sizeBytes();

    const DeviceModel host(cfg.hostCpu);
    result.octreeBuildSec = host.octreeBuildSec(tree.buildStats());
    result.stats = tree.buildStats();
    return result;
}

void
PreprocessingEngine::sampleStage(PreprocessResult &partial,
                                 std::size_t k) const
{
    HGPCN_ASSERT(partial.tree != nullptr,
                 "sampleStage needs a buildStage result");
    Octree &tree = *partial.tree;
    HGPCN_ASSERT(tree.reorderedCloud().size() >= k,
                 "frame smaller than K: ", tree.reorderedCloud().size(),
                 " < ", k);

    // Down-sampling Unit (FPGA): OIS-FPS over the table.
    OisFpsSampler::Config sampler_cfg;
    sampler_cfg.octree = cfg.octree;
    sampler_cfg.seed = cfg.seed;
    const OisFpsSampler sampler(sampler_cfg);
    SampleResult sample = sampler.sampleWithTree(tree, k);

    const DownsamplingUnitSim dsu_sim(cfg.sim);
    partial.dsu =
        dsu_sim.run(sample.stats, k, partial.octreeTableBytes);

    // Materialize the sampled input cloud (pick order preserved).
    partial.sampled = tree.reorderedCloud().gather(sample.spt);
    partial.spt = std::move(sample.spt);
    partial.stats.merge(sample.stats);
}

} // namespace hgpcn
