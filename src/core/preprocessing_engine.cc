#include "core/preprocessing_engine.h"

#include "common/logging.h"
#include "core/temporal_preprocess.h"

namespace hgpcn
{

PreprocessResult
PreprocessingEngine::process(const PointCloud &raw, std::size_t k) const
{
    // Fail before the octree build, not after it (sampleStage
    // re-checks for callers driving the stages separately).
    HGPCN_ASSERT(raw.size() >= k, "frame smaller than K: ", raw.size(),
                 " < ", k);
    PreprocessResult result = buildStage(raw);
    sampleStage(result, k);
    return result;
}

PreprocessResult
PreprocessingEngine::buildStage(const PointCloud &raw,
                                TemporalPreprocessState *carry) const
{
    PreprocessResult result;

    // Octree-build Unit (CPU): build + host-memory pre-configuration
    // in one pass. With a carry, the build is incremental against
    // the previous frame and the tree lives in the carry's pooled
    // bundle; either way the tree (and every downstream output) is
    // bit-identical.
    if (carry != nullptr) {
        HGPCN_ASSERT(
            carry->config().octree.maxDepth == cfg.octree.maxDepth &&
                carry->config().octree.leafCapacity ==
                    cfg.octree.leafCapacity,
            "carry octree config does not match the engine's");
        std::shared_ptr<PreprocessBundle> bundle =
            carry->processFrame(raw);
        result.tree =
            std::shared_ptr<Octree>(bundle, &bundle->tree);
        if (bundle->rawKnnBuilt) {
            result.rawKnn = std::shared_ptr<const SpatialHashKnn>(
                bundle, &bundle->rawKnn);
        }
        if (bundle->rawOccLevel >= 0) {
            result.rawOcc =
                std::shared_ptr<const std::vector<OccupiedCell>>(
                    bundle, &bundle->rawOcc);
            result.rawOccLevel = bundle->rawOccLevel;
        }
    } else {
        result.tree =
            std::make_shared<Octree>(Octree::build(raw, cfg.octree));
    }
    Octree &tree = *result.tree;

    // The Octree-Table row count equals the node count, so the MMIO
    // transfer size needs no materialized table.
    result.octreeTableBytes =
        OctreeTable::sizeBytesFor(tree.nodes().size());

    const DeviceModel host(cfg.hostCpu);
    result.octreeBuildSec = host.octreeBuildSec(tree.buildStats());
    result.stats = tree.buildStats();
    return result;
}

void
PreprocessingEngine::sampleStage(PreprocessResult &partial,
                                 std::size_t k) const
{
    HGPCN_ASSERT(partial.tree != nullptr,
                 "sampleStage needs a buildStage result");
    Octree &tree = *partial.tree;
    HGPCN_ASSERT(tree.reorderedCloud().size() >= k,
                 "frame smaller than K: ", tree.reorderedCloud().size(),
                 " < ", k);

    // Down-sampling Unit (FPGA): OIS-FPS over the table.
    OisFpsSampler::Config sampler_cfg;
    sampler_cfg.octree = cfg.octree;
    sampler_cfg.seed = cfg.seed;
    const OisFpsSampler sampler(sampler_cfg);
    SampleResult sample = sampler.sampleWithTree(tree, k);

    const DownsamplingUnitSim dsu_sim(cfg.sim);
    partial.dsu =
        dsu_sim.run(sample.stats, k, partial.octreeTableBytes);

    // Materialize the sampled input cloud (pick order preserved).
    partial.sampled = tree.reorderedCloud().gather(sample.spt);
    partial.spt = std::move(sample.spt);
    partial.stats.merge(sample.stats);
}

} // namespace hgpcn
