/**
 * @file
 * System-level HgPCN: the complete E2E service of Fig. 1(b)/Fig. 4.
 *
 * For every raw frame: Pre-processing Engine (octree build on the
 * CPU, OIS down-sampling on the FPGA) followed by the Inference
 * Engine (VEG data structuring + systolic feature computation),
 * reusing the pre-processing octree for the first SA level.
 * The real-time criterion of Section VII-E: the achieved frame rate
 * must meet or exceed the sensor's generation rate.
 */

#ifndef HGPCN_CORE_HGPCN_SYSTEM_H
#define HGPCN_CORE_HGPCN_SYSTEM_H

#include <memory>

#include "core/inference_engine.h"
#include "core/preprocessing_engine.h"
#include "datasets/frame.h"

namespace hgpcn
{

/** End-to-end latency breakdown for one frame. */
struct E2eResult
{
    PreprocessResult preprocess;
    InferenceResult inference;

    /** @return end-to-end seconds for this frame. */
    double
    totalSec() const
    {
        return preprocess.totalSec() + inference.totalSec();
    }

    /** @return sustained frames/second at this latency. */
    double
    fps() const
    {
        const double t = totalSec();
        return t > 0.0 ? 1.0 / t : 0.0;
    }
};

/** Aggregate statistics over a frame stream. */
struct StreamReport
{
    std::size_t frames = 0;
    double meanLatencySec = 0.0;
    double maxLatencySec = 0.0;
    double meanFps = 0.0;       //!< 1 / meanLatencySec
    double generationFps = 0.0; //!< sensor rate derived from stamps
    bool realTime = false;      //!< meanFps >= generationFps

    /** Throughput when the CPU's octree build of frame i+1 overlaps
     * the FPGA's down-sampling + inference of frame i (the two
     * engines live on different devices, Fig. 4). */
    double pipelinedFps = 0.0;
    bool pipelinedRealTime = false;
};

/** The complete HgPCN platform. */
class HgPcnSystem
{
  public:
    /** System parameters. */
    struct Config
    {
        PreprocessingEngine::Config preprocess;
        InferenceEngine::Config inference;
        /** PCN input size K (points after down-sampling). */
        std::size_t inputPoints = 4096;
    };

    /**
     * @param config System parameters.
     * @param spec Network to deploy (its inputPoints overrides
     *             config.inputPoints when nonzero).
     */
    HgPcnSystem(const Config &config, const PointNet2Spec &spec);

    /** Process one raw frame end to end. */
    E2eResult processFrame(const PointCloud &raw) const;

    /**
     * Process a frame stream and evaluate the real-time criterion
     * against the generation rate implied by frame timestamps.
     */
    StreamReport processStream(const std::vector<Frame> &frames) const;

    /** @return the deployed network. */
    const PointNet2 &model() const { return *net; }

    /** @return system parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg;
    std::unique_ptr<PointNet2> net;
    PreprocessingEngine preproc;
    InferenceEngine infer;
};

} // namespace hgpcn

#endif // HGPCN_CORE_HGPCN_SYSTEM_H
