/**
 * @file
 * System-level HgPCN: the complete E2E service of Fig. 1(b)/Fig. 4.
 *
 * For every raw frame: Pre-processing Engine (octree build on the
 * CPU, OIS down-sampling on the FPGA) followed by the Inference
 * Engine (VEG data structuring + systolic feature computation),
 * reusing the pre-processing octree for the first SA level.
 * The real-time criterion of Section VII-E: the achieved frame rate
 * must meet or exceed the sensor's generation rate.
 *
 * Streams run on the concurrent stage-pipeline runtime (src/runtime,
 * docs/RUNTIME.md) via runStream(); processStream() is the legacy
 * serial-shaped wrapper whose numbers are reproduced by a
 * single-worker runner.
 */

#ifndef HGPCN_CORE_HGPCN_SYSTEM_H
#define HGPCN_CORE_HGPCN_SYSTEM_H

#include <memory>

#include "backends/hgpcn_backend.h"
#include "core/e2e_result.h"
#include "core/frame_workspace.h"
#include "core/inference_engine.h"
#include "core/preprocessing_engine.h"
#include "datasets/frame.h"
#include "runtime/stream_runner.h"

namespace hgpcn
{

/**
 * Aggregate statistics over a frame stream (legacy shape).
 *
 * Kept for the serial benches; RuntimeReport (runtime/stream_runner.h)
 * supersedes it with measured-schedule numbers — percentiles, queue
 * occupancy, utilization and drops.
 */
struct StreamReport
{
    std::size_t frames = 0;
    double meanLatencySec = 0.0;
    double maxLatencySec = 0.0;
    double meanFps = 0.0;       //!< 1 / meanLatencySec
    double generationFps = 0.0; //!< sensor rate derived from stamps

    /** Offline capability verdict: meanFps >= generationFps.
     * NotApplicable when the stream carries no derivable rate —
     * never a vacuous YES (common/real_time.h). */
    RealTimeVerdict realTime = RealTimeVerdict::NotApplicable;

    /** Throughput when the CPU's octree build of frame i+1 overlaps
     * the FPGA's down-sampling + inference of frame i (the two
     * engines live on different devices, Fig. 4). Produced by a
     * single-worker StreamRunner in batch mode. */
    double pipelinedFps = 0.0;
    RealTimeVerdict pipelinedRealTime = RealTimeVerdict::NotApplicable;
};

/** The complete HgPCN platform. */
class HgPcnSystem
{
  public:
    /** System parameters. */
    struct Config
    {
        PreprocessingEngine::Config preprocess;
        InferenceEngine::Config inference;
        /** PCN input size K (points after down-sampling). */
        std::size_t inputPoints = 4096;
    };

    /**
     * @param config System parameters.
     * @param spec Network to deploy (its inputPoints overrides
     *             config.inputPoints when nonzero).
     */
    HgPcnSystem(const Config &config, const PointNet2Spec &spec);

    /** Process one raw frame end to end. */
    E2eResult processFrame(const PointCloud &raw) const;

    /**
     * Process a frame stream and evaluate the real-time criterion
     * against the generation rate implied by frame timestamps.
     *
     * Compatibility wrapper: delegates to a single-worker
     * StreamRunner (batch admission, one shared FPGA), whose
     * schedule reproduces the historical analytical pipelinedFps.
     */
    StreamReport processStream(const std::vector<Frame> &frames) const;

    /**
     * Process a frame stream on the concurrent runtime with
     * @p runner_cfg worker/queue/overload parameters. The runner
     * K defaults to this system's inputPoints when the config
     * leaves it at 0.
     */
    RuntimeResult runStream(const std::vector<Frame> &frames,
                            StreamRunner::Config runner_cfg) const;

    /** @return the deployed network. */
    const PointNet2 &model() const { return *net; }

    /** @return the pre-processing engine (for composing runners). */
    const PreprocessingEngine &preprocessor() const { return preproc; }

    /** @return the inference engine (for composing runners). */
    const InferenceEngine &inferencer() const { return infer; }

    /** @return the engine as an ExecutionBackend — what this
     * system's serial and streamed paths both execute on, and what
     * a heterogeneous fleet swaps out per shard. */
    const ExecutionBackend &backend() const { return *be; }

    /** @return system parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg;
    std::unique_ptr<PointNet2> net;
    PreprocessingEngine preproc;
    InferenceEngine infer;
    /** The engine behind the backend interface; references *net,
     * which the unique_ptr keeps address-stable. */
    std::unique_ptr<HgpcnBackend> be;
    /** Warm scratch arenas for the serial processFrame() path
     * (streamed runs use the StreamRunner's own pool). */
    mutable WorkspacePool serialWorkspaces;
};

} // namespace hgpcn

#endif // HGPCN_CORE_HGPCN_SYSTEM_H
