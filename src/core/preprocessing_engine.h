/**
 * @file
 * HgPCN Pre-processing Engine (paper Section V).
 *
 * The heterogeneous front end of Fig. 4: the Octree-build Unit runs
 * on the host CPU — one pass over the raw frame builds the octree,
 * reorganises the points into SFC order in host memory and emits the
 * Octree-Table — and the Down-sampling Unit on the FPGA executes
 * OIS-FPS against that table, producing the Sampled-Points-Table and
 * the K-point input cloud for the Inference Engine.
 *
 * The functional result (which points get sampled) comes from the
 * real OIS implementation; the latency comes from the CPU device
 * model (build) and the Down-sampling Unit cycle model (sampling).
 */

#ifndef HGPCN_CORE_PREPROCESSING_ENGINE_H
#define HGPCN_CORE_PREPROCESSING_ENGINE_H

#include <memory>

#include "knn/spatial_hash_knn.h"
#include "octree/octree.h"
#include "octree/octree_table.h"
#include "octree/voxel_grid.h"
#include "sampling/ois_fps_sampler.h"
#include "sim/device_model.h"
#include "sim/down_sampling_unit.h"
#include "sim/sim_config.h"

namespace hgpcn
{

class TemporalPreprocessState;

/** Result of pre-processing one frame. */
struct PreprocessResult
{
    /** The octree over the raw frame (owned; the Inference Engine
     * may reuse it for VEG per Section VIII). When the frame came
     * through a TemporalPreprocessState carry, this aliases the
     * pooled bundle — same API, pooled storage. */
    std::shared_ptr<Octree> tree;

    /** Cached raw-cloud KNN buckets over tree->reorderedCloud()
     * (null unless a carry with cacheIndices produced the frame). */
    std::shared_ptr<const SpatialHashKnn> rawKnn;

    /** Cached occupancy list at rawOccLevel (null when absent). */
    std::shared_ptr<const std::vector<OccupiedCell>> rawOcc;

    /** Octree level of rawOcc (-1 when absent). */
    int rawOccLevel = -1;

    /** The K sampled points (coordinates+features), in pick order. */
    PointCloud sampled;

    /** Sampled-Points-Table: reordered-memory addresses of picks. */
    std::vector<PointIndex> spt;

    /** Octree-Table transferred to the FPGA. */
    std::size_t octreeTableBytes = 0;

    /** Modeled CPU seconds for octree build + reorganization. */
    double octreeBuildSec = 0.0;

    /** Down-sampling Unit latency breakdown. */
    DownsamplingUnitResult dsu;

    /** Sampler workload counters. */
    StatSet stats;

    /** @return end-to-end pre-processing seconds. */
    double
    totalSec() const
    {
        return octreeBuildSec + dsu.totalSec();
    }
};

/** The heterogeneous pre-processing front end. */
class PreprocessingEngine
{
  public:
    /** Engine parameters. */
    struct Config
    {
        /** Octree build policy. The defaults keep the Octree-Table
         * within ~10 Mb at 1e6-point frames (Fig. 13). */
        Octree::Config octree{/*maxDepth=*/12, /*leafCapacity=*/64};
        /** Platform timing parameters. */
        SimConfig sim = SimConfig::defaults();
        /** Host CPU running the Octree-build Unit. */
        DeviceSpec hostCpu = DeviceModel::xeonW2255();
        /** Sampling seed. */
        std::uint64_t seed = 1;
    };

    /** Create with default configuration. */
    PreprocessingEngine() : PreprocessingEngine(Config{}) {}

    explicit PreprocessingEngine(const Config &config) : cfg(config) {}

    /**
     * Pre-process a raw frame: build the octree (CPU), transfer the
     * table (MMIO) and down-sample to @p k points (FPGA).
     *
     * Equivalent to buildStage() followed by sampleStage(); the
     * streaming runtime (src/runtime) calls the two halves from
     * separate pipeline stages so the CPU build of frame i+1 can
     * overlap the FPGA work of frame i.
     */
    PreprocessResult process(const PointCloud &raw, std::size_t k) const;

    /**
     * Octree-build Unit half (CPU): build the octree over @p raw,
     * size the Octree-Table and cost the build. The returned result
     * has no sampled points yet — pass it to sampleStage().
     *
     * @param carry Optional cross-frame cache
     *   (core/temporal_preprocess.h): the octree and raw-cloud
     *   indices come from the carry's pooled bundles, rebuilt
     *   incrementally when frames cohere. Output is bit-identical
     *   to the carry-less path; its octree config must match this
     *   engine's.
     */
    PreprocessResult buildStage(const PointCloud &raw,
                                TemporalPreprocessState *carry =
                                    nullptr) const;

    /**
     * Down-sampling Unit half (FPGA): OIS-FPS @p partial's octree
     * down to @p k points, filling sampled/spt/dsu and merging the
     * sampler workload counters. @p partial must come from
     * buildStage() of this engine.
     */
    void sampleStage(PreprocessResult &partial, std::size_t k) const;

    /** @return configured parameters. */
    const Config &config() const { return cfg; }

  private:
    Config cfg;
};

} // namespace hgpcn

#endif // HGPCN_CORE_PREPROCESSING_ENGINE_H
