/**
 * @file
 * Zero-alloc steady state: reusable per-frame scratch arenas.
 *
 * Every frame of a stream runs the same network over the same input
 * size, so the tensors and neighbor-search scratch it needs have the
 * same shapes frame after frame. A FrameWorkspace owns that memory
 * across frames: a bump arena of Tensors and position buffers (reset
 * each frame, capacity retained) plus named scratch buffers for the
 * spatial-hash KNN index. After the first frame warms a workspace
 * up, the hot path performs no arena-backing allocation — pinned by
 * the growth counter and tests/test_runtime.cc.
 *
 * Ownership: a WorkspacePool hands workspaces to pipeline workers
 * (StreamRunner owns one pool; HgPcnSystem another for the serial
 * path). Stage worker threads are recreated per run(), so pooling —
 * not thread_local storage — is what keeps the arenas warm across
 * runs. A workspace is single-threaded while leased; the pool is
 * thread-safe.
 *
 * What stays on the regular heap: outputs that escape the frame
 * (logits, execution traces, gather results, the octree) — those are
 * results, not scratch, and are small next to the pooled tensor
 * traffic (tens of MB per frame for Pointnet++(s)).
 */

#ifndef HGPCN_CORE_FRAME_WORKSPACE_H
#define HGPCN_CORE_FRAME_WORKSPACE_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "geometry/point_cloud.h"
#include "nn/tensor.h"

namespace hgpcn
{

/** Per-frame scratch arena; see file comment for the contract. */
class FrameWorkspace
{
  public:
    FrameWorkspace() = default;
    FrameWorkspace(const FrameWorkspace &) = delete;
    FrameWorkspace &operator=(const FrameWorkspace &) = delete;

    /**
     * Reset the bump arenas for a new frame. Capacity (and therefore
     * warm-up state) is retained; Tensor/position references handed
     * out for the previous frame become invalid.
     */
    void
    beginFrame()
    {
        tensor_cursor = 0;
        pos_cursor = 0;
        idx_cursor = 0;
    }

    /**
     * @return a [rows, cols] tensor from the bump arena. Contents
     * are unspecified (stale frame data) — callers must fully write
     * it. Valid until the next beginFrame().
     */
    Tensor &
    tensor(std::size_t rows, std::size_t cols)
    {
        if (tensor_cursor == tensors.size()) {
            tensors.emplace_back();
            noteGrowth();
        }
        Tensor &t = tensors[tensor_cursor++];
        if (t.capacityFloats() < rows * cols)
            noteGrowth();
        t.resizeUninit(rows, cols);
        return t;
    }

    /**
     * @return a size-@p n position buffer from the bump arena
     * (unspecified contents, valid until the next beginFrame()).
     */
    std::vector<Vec3> &
    positions(std::size_t n)
    {
        if (pos_cursor == position_bufs.size()) {
            position_bufs.emplace_back();
            noteGrowth();
        }
        std::vector<Vec3> &v = position_bufs[pos_cursor++];
        if (v.capacity() < n)
            noteGrowth();
        v.resize(n);
        return v;
    }

    /**
     * @return a size-@p n point-index buffer from the bump arena
     * (unspecified contents, valid until the next beginFrame()).
     */
    std::vector<PointIndex> &
    indices(std::size_t n)
    {
        if (idx_cursor == index_bufs.size()) {
            index_bufs.emplace_back();
            noteGrowth();
        }
        std::vector<PointIndex> &v = index_bufs[idx_cursor++];
        if (v.capacity() < n)
            noteGrowth();
        v.resize(n);
        return v;
    }

    /**
     * Reserve capacity for a registered scratch vector, counting
     * backing growth. Use for long-lived scratch members below (the
     * arena helpers above count themselves).
     */
    template <class Vec>
    void
    ensure(Vec &v, std::size_t n)
    {
        if (v.capacity() < n) {
            v.reserve(n);
            noteGrowth();
        }
    }

    /** Neighbor-search scratch, shared by the spatial-hash index
     * (src/knn) and the VEG gatherer (src/gather) — the two are
     * never live at once within a frame (one DsMethod per run). */
    struct KnnScratch
    {
        std::vector<std::uint32_t> cellStart; //!< CSR offsets
        std::vector<std::uint32_t> pointCell; //!< cell id per point
        std::vector<PointIndex> order;        //!< bucketed point ids
        std::vector<std::pair<float, PointIndex>> scored;
        std::vector<PointIndex> inner;    //!< VEG inner-ring points
        std::vector<PointIndex> lastRing; //!< VEG last-ring points
    };
    KnnScratch knn;

    /** Sampler scratch (src/sampling). */
    struct SamplingScratch
    {
        std::vector<float> minDist; //!< FPS cached min distances
    };
    SamplingScratch sampling;

    /** MLP row-parallelism for this worker's frames (>= 1); set by
     * the inference stage from the runner config. */
    int intraOpThreads = 1;

    /**
     * @return process-wide count of arena/scratch backing growths.
     * Flat across a steady-state window == the hot path allocated
     * nothing new (the zero-alloc regression pin).
     */
    static std::uint64_t
    backingGrowths()
    {
        return growth_count.load(std::memory_order_relaxed);
    }

    /** Record one backing allocation (grew or added a buffer). */
    static void
    noteGrowth()
    {
        growth_count.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    // deques: handed-out references stay valid as the arena grows.
    std::deque<Tensor> tensors;
    std::size_t tensor_cursor = 0;
    std::deque<std::vector<Vec3>> position_bufs;
    std::size_t pos_cursor = 0;
    std::deque<std::vector<PointIndex>> index_bufs;
    std::size_t idx_cursor = 0;

    static std::atomic<std::uint64_t> growth_count;
};

/**
 * A thread-safe pool of FrameWorkspaces. Workers lease one for the
 * duration of a stage execution; returning it keeps the warmed
 * arena for the next frame (or the next run — stage worker threads
 * do not outlive run(), the pool does).
 */
class WorkspacePool
{
  public:
    /** RAII lease; returns the workspace on destruction. */
    class Lease
    {
      public:
        Lease(FrameWorkspace *workspace, WorkspacePool *owner)
            : ws(workspace), pool(owner)
        {
        }
        Lease(Lease &&o) noexcept : ws(o.ws), pool(o.pool)
        {
            o.ws = nullptr;
            o.pool = nullptr;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        Lease &operator=(Lease &&) = delete;
        ~Lease()
        {
            if (pool != nullptr)
                pool->release(ws);
        }

        FrameWorkspace *get() const { return ws; }
        FrameWorkspace *operator->() const { return ws; }
        FrameWorkspace &operator*() const { return *ws; }

      private:
        FrameWorkspace *ws;
        WorkspacePool *pool;
    };

    /** @return a leased workspace (created cold on first use). */
    Lease
    acquire()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (free_list.empty()) {
            owned.push_back(std::make_unique<FrameWorkspace>());
            FrameWorkspace::noteGrowth();
            return Lease(owned.back().get(), this);
        }
        FrameWorkspace *ws = free_list.back();
        free_list.pop_back();
        return Lease(ws, this);
    }

    /** @return workspaces ever created by this pool. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return owned.size();
    }

  private:
    void
    release(FrameWorkspace *ws)
    {
        std::lock_guard<std::mutex> lock(mu);
        free_list.push_back(ws);
    }

    mutable std::mutex mu;
    std::vector<std::unique_ptr<FrameWorkspace>> owned;
    std::vector<FrameWorkspace *> free_list;
};

} // namespace hgpcn

#endif // HGPCN_CORE_FRAME_WORKSPACE_H
