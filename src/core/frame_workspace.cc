#include "core/frame_workspace.h"

namespace hgpcn
{

std::atomic<std::uint64_t> FrameWorkspace::growth_count{0};

} // namespace hgpcn
