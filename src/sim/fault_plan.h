/**
 * @file
 * FaultPlan: seeded, virtual-timeline-driven fault injection.
 *
 * A production fleet sees faults a cycle model never emits: a shard
 * crashes for a while, a device degrades, an inference pass returns
 * a transient error. A FaultPlan scripts exactly those events on the
 * *virtual* timeline — crash windows, slowdown (hang) windows and
 * per-backend transient infer-error probabilities — as a pure
 * function of (config, seed), so a faulted run replays bit for bit
 * on any machine, the same property every other modeled quantity in
 * this repo has.
 *
 * The plan is consulted at dispatch time by the serving layer
 * (serving/failover.h): every fault outcome — which attempt errors,
 * how much backoff a frame pays, whether a shard is down when a
 * frame arrives — is decided from the frame's arrival stamp and a
 * keyed splitmix64 draw, *before* the functional pipeline runs.
 * The resolved per-frame FrameFaultDirective is then charged as
 * virtual time by the runtime stages. A default-constructed (empty)
 * plan is inert: every directive is clean and every schedule is
 * byte-identical to a build without the fault layer.
 */

#ifndef HGPCN_SIM_FAULT_PLAN_H
#define HGPCN_SIM_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hgpcn
{

/**
 * Resolved fault outcome for one frame, produced by the serving
 * layer's dispatch-time resolution (serving/failover.h) and charged
 * by the runtime stages as virtual time. The default value is the
 * clean directive: one attempt, no backoff, full fidelity — a
 * runner fed clean directives schedules byte-identically to one fed
 * none at all.
 */
struct FrameFaultDirective
{
    /** Inference attempts charged to the device (1 = clean; each
     * failed attempt re-occupies the device for a full service). */
    std::uint32_t attempts = 1;

    /** Total deterministic exponential backoff charged between
     * attempts, virtual seconds. */
    double backoffSec = 0.0;

    /** Service-time multiplier from hang/slowdown windows (>= 1). */
    double slowdownMult = 1.0;

    /** true: the frame exhausted its retries or deadline — it still
     * occupies the device for the modeled attempts but delivers no
     * output (counted framesFailed, excluded from completions). */
    bool failed = false;

    /** true: served at reduced fidelity (graceful degradation). */
    bool degraded = false;

    /** Reduced sample budget for degraded frames (points after
     * down-sampling); 0 = the configured full budget. */
    std::size_t samplePoints = 0;

    /** @return true when the directive changes nothing. */
    bool
    clean() const
    {
        return attempts == 1 && backoffSec == 0.0 &&
               slowdownMult == 1.0 && !failed && !degraded &&
               samplePoints == 0;
    }
};

/** A shard is down for [startSec, endSec) of the virtual timeline:
 * frames arriving in the window cannot be served there and fail
 * over to surviving shards. */
struct ShardCrashWindow
{
    std::size_t shard = 0;
    double startSec = 0.0;
    double endSec = 0.0;
};

/** A shard serves, but slower, for [startSec, endSec): every frame
 * dispatched to it in the window is charged multiplier x its
 * modeled inference service time (a hang / thermal-throttle /
 * contention episode). */
struct ShardSlowdownWindow
{
    std::size_t shard = 0;
    double startSec = 0.0;
    double endSec = 0.0;
    double multiplier = 1.0;
};

/** Transient infer-error probability for one backend family over
 * [startSec, endSec) — an error storm. Empty backend name matches
 * every backend. */
struct TransientErrorWindow
{
    /** Registry name ("hgpcn", ...); empty = all backends. */
    std::string backend;
    /** Per-attempt error probability in [0, 1]. */
    double rate = 0.0;
    double startSec = 0.0;
    double endSec = std::numeric_limits<double>::infinity();
};

/** The scripted fault schedule (see file header). */
class FaultPlan
{
  public:
    struct Config
    {
        /** Seed of the keyed transient-error draws; same (config,
         * seed) => bit-identical fault outcomes. */
        std::uint64_t seed = 0;

        std::vector<ShardCrashWindow> crashes;
        std::vector<ShardSlowdownWindow> slowdowns;
        std::vector<TransientErrorWindow> errors;
    };

    /** The empty (inert) plan. */
    FaultPlan() = default;

    explicit FaultPlan(const Config &config);

    /** @return true when the plan injects nothing — the serving
     * layer skips fault resolution entirely, keeping the zero-fault
     * path byte-identical to a build without the feature. */
    bool empty() const;

    /** @return true when @p shard is crashed at virtual time @p t
     * (half-open windows: start <= t < end). */
    bool shardCrashed(std::size_t shard, double t) const;

    /** @return product of the slowdown multipliers active on
     * @p shard at @p t (1.0 when none). */
    double slowdown(std::size_t shard, double t) const;

    /** @return per-attempt transient-error probability for
     * @p backend at @p t: the max over matching windows. */
    double errorRate(const std::string &backend, double t) const;

    /**
     * Keyed deterministic draw: does attempt @p attempt of frame
     * @p frame (global stream index) on (@p backend, @p shard)
     * suffer a transient infer error at virtual time @p t?
     *
     * Pure: splitmix64 over (seed, backend hash, shard, frame,
     * attempt) against errorRate(backend, t). Independent of
     * execution order, thread count and platform.
     */
    bool transientError(const std::string &backend,
                        std::size_t shard, std::size_t frame,
                        std::uint32_t attempt, double t) const;

    const Config &config() const { return cfg; }

  private:
    Config cfg;
};

} // namespace hgpcn

#endif // HGPCN_SIM_FAULT_PLAN_H
