/**
 * @file
 * Data Structuring Unit pipeline model (paper Fig. 8).
 *
 * Six stages, pipelined across central points:
 *
 *   1. FP  Fetch Central Point (coordinates + m-code)
 *   2. LV  Locate Central Voxel
 *   3. VE  Voxel Expansion (ring cell lookups until >= K points)
 *   4. GP  Gather Points (inner rings, no distance computation)
 *   5. ST  Sort (bitonic top-(K - inner) over the last ring Nn)
 *   6. BF  Buffering (emit K neighbors to the FCU input buffer)
 *
 * Per-centroid stage costs come from the recorded VegTrace, so the
 * breakdown of Fig. 16 and the VEG-vs-PointACC sort-workload gap of
 * Fig. 15 fall out of the same numbers the functional gatherer
 * measured.
 */

#ifndef HGPCN_SIM_DSU_PIPELINE_H
#define HGPCN_SIM_DSU_PIPELINE_H

#include <array>
#include <cstdint>
#include <span>

#include "gather/gatherer.h"
#include "sim/sim_config.h"

namespace hgpcn
{

/** Pipeline stage ids (indices into breakdowns). */
enum DsuStage : std::size_t
{
    kStageFp = 0,
    kStageLv = 1,
    kStageVe = 2,
    kStageGp = 3,
    kStageSt = 4,
    kStageBf = 5,
    kStageCount = 6,
};

/** @return printable stage mnemonic. */
const char *dsuStageName(std::size_t stage);

/** Latency result of one DSU run. */
struct DsuPipelineResult
{
    /** Total cycles of each stage summed over all centroids. */
    std::array<std::uint64_t, kStageCount> stageCycles{};

    /** Pipelined execution cycles (bottleneck-stage model). */
    std::uint64_t pipelinedCycles = 0;

    /** Seconds at the FPGA clock. */
    double pipelinedSec = 0.0;

    /** @return sum of per-stage cycles (unpipelined). */
    std::uint64_t
    serialCycles() const
    {
        std::uint64_t total = 0;
        for (auto c : stageCycles)
            total += c;
        return total;
    }
};

/** Cycle model of the Data Structuring Unit. */
class DsuPipelineSim
{
  public:
    /**
     * @param config Platform parameters.
     * @param octree_levels Levels the LV stage walks (tree depth).
     */
    DsuPipelineSim(const SimConfig &config, int octree_levels)
        : cfg(config), lv_levels(octree_levels)
    {}

    /**
     * Time a gathering pass.
     *
     * @param traces Per-centroid VEG traces.
     * @param k Neighbors gathered per centroid.
     */
    DsuPipelineResult run(std::span<const VegTrace> traces,
                          std::size_t k) const;

  private:
    SimConfig cfg;
    int lv_levels;
};

} // namespace hgpcn

#endif // HGPCN_SIM_DSU_PIPELINE_H
