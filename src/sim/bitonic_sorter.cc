#include "sim/bitonic_sorter.h"

#include <bit>

#include "common/logging.h"

namespace hgpcn
{

namespace
{

/** Round up to a power of two (min 2). */
std::uint64_t
padPow2(std::uint64_t n)
{
    if (n <= 2)
        return 2;
    return std::bit_ceil(n);
}

} // namespace

std::uint64_t
BitonicSorterSim::sortCycles(std::uint64_t n) const
{
    if (n <= 1)
        return 1;
    const std::uint64_t p = padPow2(n);
    const std::uint64_t log_p =
        static_cast<std::uint64_t>(std::bit_width(p) - 1);
    const std::uint64_t stages = log_p * (log_p + 1) / 2;
    const std::uint64_t pairs = p / 2;
    const std::uint64_t cycles_per_stage =
        (pairs + n_lanes - 1) / n_lanes;
    return stages * cycles_per_stage;
}

std::uint64_t
BitonicSorterSim::topKCycles(std::uint64_t n, std::uint64_t k) const
{
    HGPCN_ASSERT(k >= 1, "k must be positive");
    if (n <= k)
        return sortCycles(n);
    // Maintain a sorted k-buffer; each incoming k-sized batch is
    // bitonic-sorted and merged (one extra stage set of log2(2k)).
    const std::uint64_t batches = (n + k - 1) / k;
    const std::uint64_t batch_sort = sortCycles(k);
    const std::uint64_t p2 = padPow2(2 * k);
    const std::uint64_t merge_stages =
        static_cast<std::uint64_t>(std::bit_width(p2) - 1);
    const std::uint64_t merge =
        merge_stages * ((p2 / 2 + n_lanes - 1) / n_lanes);
    return batches * (batch_sort + merge);
}

} // namespace hgpcn
