#include "sim/fault_plan.h"

#include "common/logging.h"

namespace hgpcn
{
namespace
{

/** SplitMix64 mix (same constants as common/rng.h's reseed loop):
 * the one-way scrambler that keys every transient-error draw. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** FNV-1a over the backend name: a stable, platform-independent
 * string key (std::hash is not specified across implementations). */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Half-open window test. */
bool
inWindow(double t, double start, double end)
{
    return t >= start && t < end;
}

} // namespace

FaultPlan::FaultPlan(const Config &config) : cfg(config)
{
    for (const ShardCrashWindow &w : cfg.crashes)
        HGPCN_ASSERT(w.endSec >= w.startSec,
                     "crash window end (", w.endSec,
                     ") before start (", w.startSec, ")");
    for (const ShardSlowdownWindow &w : cfg.slowdowns) {
        HGPCN_ASSERT(w.endSec >= w.startSec,
                     "slowdown window end (", w.endSec,
                     ") before start (", w.startSec, ")");
        HGPCN_ASSERT(w.multiplier >= 1.0,
                     "slowdown multiplier (", w.multiplier,
                     ") must be >= 1");
    }
    for (const TransientErrorWindow &w : cfg.errors) {
        HGPCN_ASSERT(w.endSec >= w.startSec,
                     "error window end (", w.endSec,
                     ") before start (", w.startSec, ")");
        HGPCN_ASSERT(w.rate >= 0.0 && w.rate <= 1.0,
                     "error rate (", w.rate, ") must be in [0, 1]");
    }
}

bool
FaultPlan::empty() const
{
    if (!cfg.crashes.empty())
        return false;
    for (const ShardSlowdownWindow &w : cfg.slowdowns) {
        if (w.multiplier > 1.0 && w.endSec > w.startSec)
            return false;
    }
    for (const TransientErrorWindow &w : cfg.errors) {
        if (w.rate > 0.0 && w.endSec > w.startSec)
            return false;
    }
    return true;
}

bool
FaultPlan::shardCrashed(std::size_t shard, double t) const
{
    for (const ShardCrashWindow &w : cfg.crashes) {
        if (w.shard == shard && inWindow(t, w.startSec, w.endSec))
            return true;
    }
    return false;
}

double
FaultPlan::slowdown(std::size_t shard, double t) const
{
    double mult = 1.0;
    for (const ShardSlowdownWindow &w : cfg.slowdowns) {
        if (w.shard == shard && inWindow(t, w.startSec, w.endSec))
            mult *= w.multiplier;
    }
    return mult;
}

double
FaultPlan::errorRate(const std::string &backend, double t) const
{
    double rate = 0.0;
    for (const TransientErrorWindow &w : cfg.errors) {
        if (!w.backend.empty() && w.backend != backend)
            continue;
        if (inWindow(t, w.startSec, w.endSec) && w.rate > rate)
            rate = w.rate;
    }
    return rate;
}

bool
FaultPlan::transientError(const std::string &backend,
                          std::size_t shard, std::size_t frame,
                          std::uint32_t attempt, double t) const
{
    const double rate = errorRate(backend, t);
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    std::uint64_t h = splitmix64(cfg.seed ^ fnv1a(backend));
    h = splitmix64(h ^ static_cast<std::uint64_t>(shard));
    h = splitmix64(h ^ static_cast<std::uint64_t>(frame));
    h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
    // 53 high bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < rate;
}

} // namespace hgpcn
