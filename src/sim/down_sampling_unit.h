/**
 * @file
 * Down-sampling Unit (FPGA) cycle model.
 *
 * The hardware half of the Pre-processing Engine (Section V-B).
 * After the CPU transfers the Octree-Table over MMIO, each pick of
 * OIS-FPS descends the table: at every level the eight Sampling
 * Modules XOR+popcount the candidate children's m-codes against the
 * seed voxel in parallel (Fig. 7) and a small comparator tree picks
 * the farthest; reaching a leaf, the point's host-memory address is
 * resolved, the point is fetched, and its address appended to the
 * Sampled-Points-Table.
 */

#ifndef HGPCN_SIM_DOWN_SAMPLING_UNIT_H
#define HGPCN_SIM_DOWN_SAMPLING_UNIT_H

#include <cstdint>

#include "common/stats.h"
#include "sim/sim_config.h"

namespace hgpcn
{

/** Latency result of one down-sampling run. */
struct DownsamplingUnitResult
{
    double mmioSec = 0.0;      //!< Octree-Table transfer
    double descentSec = 0.0;   //!< table-lookup walks
    double leafScanSec = 0.0;  //!< intra-leaf farthest-point picks
    double hostReadSec = 0.0;  //!< fetches of the K picked points
    double sptWriteSec = 0.0;  //!< Sampled-Points-Table appends
    std::uint64_t cycles = 0;  //!< total FPGA cycles (excl. memory)

    /** @return end-to-end seconds. */
    double
    totalSec() const
    {
        return mmioSec + descentSec + leafScanSec + hostReadSec +
               sptWriteSec;
    }
};

/** Cycle model of the Down-sampling Unit. */
class DownsamplingUnitSim
{
  public:
    explicit DownsamplingUnitSim(const SimConfig &config)
        : cfg(config)
    {}

    /**
     * Time an OIS run from its workload counters.
     *
     * @param sample_stats Counters produced by OisFpsSampler
     *        ("sample.levels_visited", "sample.leaf_candidates", ...).
     * @param k Points sampled.
     * @param octree_table_bytes MMIO transfer size.
     */
    DownsamplingUnitResult run(const StatSet &sample_stats,
                               std::uint64_t k,
                               std::uint64_t octree_table_bytes) const;

    /**
     * Speedup of the hardware unit over a scalar-CPU execution of
     * the same descent workload (the Fig. 12 "5.95x-6.24x vs
     * CPU-implemented Down-sampling Unit" comparison): the CPU
     * examines the eight children serially and runs at its own
     * clock.
     */
    double cpuUnitSec(const StatSet &sample_stats, std::uint64_t k,
                      double cpu_effective_hz = 1.0e9) const;

  private:
    SimConfig cfg;
};

} // namespace hgpcn

#endif // HGPCN_SIM_DOWN_SAMPLING_UNIT_H
