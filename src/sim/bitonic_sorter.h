/**
 * @file
 * Bitonic sorter hardware model.
 *
 * Both HgPCN's DSU and PointACC's Mapping Unit select top-K
 * neighbors with a bitonic sorting network (Section VII-D); the
 * architectural difference the paper highlights is *how many
 * elements* each feeds the sorter (the entire input cloud for
 * PointACC vs only the last expansion ring Nn for HgPCN). This model
 * turns an element count into cycles so that difference is the only
 * variable.
 */

#ifndef HGPCN_SIM_BITONIC_SORTER_H
#define HGPCN_SIM_BITONIC_SORTER_H

#include <cstdint>

#include "sim/sim_config.h"

namespace hgpcn
{

/** Cycle model of a fixed-width bitonic sorting network. */
class BitonicSorterSim
{
  public:
    /** @param lanes Elements ingested per cycle per stage. */
    explicit BitonicSorterSim(std::size_t lanes) : n_lanes(lanes) {}

    /**
     * @return cycles to fully sort @p n elements: a bitonic network
     * over the padded size p = 2^ceil(log2 n) has
     * log2(p)*(log2(p)+1)/2 compare-exchange stages, each passing
     * p/2 element pairs through `lanes` comparators.
     */
    std::uint64_t sortCycles(std::uint64_t n) const;

    /**
     * @return cycles to select the top @p k of @p n elements.
     * Hardware top-K keeps a sorted k-buffer and merges input
     * batches: model as sorting k-sized chunks plus a merge pass per
     * batch.
     */
    std::uint64_t topKCycles(std::uint64_t n, std::uint64_t k) const;

  private:
    std::size_t n_lanes;
};

} // namespace hgpcn

#endif // HGPCN_SIM_BITONIC_SORTER_H
