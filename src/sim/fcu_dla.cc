#include "sim/fcu_dla.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "sim/dram_model.h"
#include "sim/systolic_array.h"

namespace hgpcn
{

FcuResult
FcuSim::run(const ExecutionTrace &trace) const
{
    const SystolicArraySim array(cfg.fpga.systolicRows,
                                 cfg.fpga.systolicCols);
    const DramModel dram(cfg.memory);

    FcuResult result;
    std::uint64_t traffic_bytes = 0;
    for (const GemmOp &op : trace.gemms) {
        result.computeCycles += array.gemmCycles(op.m, op.k, op.n);
        result.macs += op.macs();
        // Weights fetched once per layer, activations in and out.
        traffic_bytes += (op.k * op.n + op.m * op.k + op.m * op.n) * 4;
    }
    result.computeSec =
        static_cast<double>(result.computeCycles) / cfg.fpga.acceleratorClockHz;
    result.memorySec = dram.sequentialSec(traffic_bytes);

    const double peak =
        static_cast<double>(array.peakMacsPerCycle()) * cfg.fpga.acceleratorClockHz;
    const double total = result.totalSec();
    result.utilization =
        total > 0.0 ? static_cast<double>(result.macs) / (peak * total)
                    : 0.0;
    return result;
}

FcuResult
FcuSim::runStacked(std::span<const ExecutionTrace *const> traces) const
{
    // Merge same-layer GEMMs across frames: one weight residency,
    // row counts summed. First-seen order keeps a singleton batch
    // identical to its solo trace.
    std::vector<GemmOp> merged;
    std::unordered_map<std::string, std::size_t> by_layer;
    for (const ExecutionTrace *trace : traces) {
        for (const GemmOp &op : trace->gemms) {
            const auto it = by_layer.find(op.layer);
            if (it == by_layer.end()) {
                by_layer.emplace(op.layer, merged.size());
                merged.push_back(op);
                continue;
            }
            GemmOp &m = merged[it->second];
            HGPCN_ASSERT(m.k == op.k && m.n == op.n,
                         "batched FCU: layer '", op.layer,
                         "' shape mismatch across frames");
            m.m += op.m;
        }
    }
    ExecutionTrace stacked;
    stacked.gemms = std::move(merged);
    return run(stacked);
}

} // namespace hgpcn
