#include "sim/down_sampling_unit.h"

#include "sim/dram_model.h"

namespace hgpcn
{

DownsamplingUnitResult
DownsamplingUnitSim::run(const StatSet &sample_stats, std::uint64_t k,
                         std::uint64_t octree_table_bytes) const
{
    const double cycle = 1.0 / cfg.fpga.clockHz;
    DownsamplingUnitResult result;

    // Octree-Table transfer (CPU -> FPGA over MMIO).
    result.mmioSec =
        cfg.mmio.latencySec + static_cast<double>(octree_table_bytes) /
                                  cfg.mmio.bandwidthBytesPerSec;

    // Descent: per visited level all live children are evaluated in
    // parallel by the Sampling Modules (one XOR+popcount cycle) and
    // reduced by a comparator tree (3 levels for 8 inputs). With
    // fewer than 8 modules the children are processed in passes.
    const std::uint64_t levels =
        sample_stats.get("sample.levels_visited");
    const std::uint64_t passes =
        (8 + cfg.fpga.samplingModules - 1) / cfg.fpga.samplingModules;
    const std::uint64_t descent_cycles = levels * (passes + 3);

    // Intra-leaf farthest pick: the Sampling Modules compare leaf
    // candidates in parallel.
    const std::uint64_t leaf_candidates =
        sample_stats.get("sample.leaf_candidates");
    const std::uint64_t leaf_cycles =
        (leaf_candidates + cfg.fpga.samplingModules - 1) /
        cfg.fpga.samplingModules;

    // SPT append: one on-chip write per pick.
    const std::uint64_t spt_cycles = k;

    result.descentSec = static_cast<double>(descent_cycles) * cycle;
    result.leafScanSec = static_cast<double>(leaf_cycles) * cycle;
    result.sptWriteSec = static_cast<double>(spt_cycles) * cycle;
    result.cycles = descent_cycles + leaf_cycles + spt_cycles;

    // Host reads of the K picked points (random addresses).
    const DramModel dram(cfg.memory);
    result.hostReadSec = dram.randomSec(k, cfg.memory.pointBytes);
    return result;
}

double
DownsamplingUnitSim::cpuUnitSec(const StatSet &sample_stats,
                                std::uint64_t k,
                                double cpu_effective_hz) const
{
    // A scalar core walks the same table serially. Per level it
    // loads up to eight child entries (4 ops each), XOR/popcount/
    // compares them (3 ops each) and eats ~2 dependent-load stalls
    // (~15 ops-equivalent each at the 1 GHz effective rate); leaf
    // candidates cost a load+xor+compare+branch each, picks a
    // store+bookkeeping. This is the software Down-sampling Unit of
    // Fig. 12's inset comparison.
    const std::uint64_t levels =
        sample_stats.get("sample.levels_visited");
    const std::uint64_t leaf =
        sample_stats.get("sample.leaf_candidates");
    const std::uint64_t ops =
        levels * (8 * 4 + 8 * 3 + 2 * 15) + leaf * 5 + k * 6;
    return static_cast<double>(ops) / cpu_effective_hz;
}

} // namespace hgpcn
