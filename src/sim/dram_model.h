/**
 * @file
 * Host (shared) memory timing model.
 *
 * Both engines of HgPCN read the shared Host Memory (Fig. 4). The
 * model distinguishes sequential bursts — what the octree's
 * pre-configured layout turns voxel reads into — from dependent
 * random accesses, which is what brute-force FPS issues.
 */

#ifndef HGPCN_SIM_DRAM_MODEL_H
#define HGPCN_SIM_DRAM_MODEL_H

#include <cstdint>

#include "sim/sim_config.h"

namespace hgpcn
{

/** Bandwidth/latency model of the shared host memory. */
class DramModel
{
  public:
    explicit DramModel(const MemoryParams &params) : prm(params) {}

    /** @return seconds to stream @p bytes sequentially. */
    double
    sequentialSec(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) / prm.bandwidthBytesPerSec;
    }

    /**
     * @return seconds for @p count independent random accesses of
     * @p bytes_each, modeled as one burst each with the access
     * latency partially pipelined (4 outstanding requests).
     */
    double
    randomSec(std::uint64_t count, std::uint64_t bytes_each) const
    {
        const double lat = prm.randomAccessSec / 4.0;
        const std::uint64_t burst =
            bytes_each < prm.burstBytes ? prm.burstBytes : bytes_each;
        return static_cast<double>(count) *
               (lat + static_cast<double>(burst) /
                          prm.bandwidthBytesPerSec);
    }

    /** @return seconds to read @p n points sequentially. */
    double
    pointStreamSec(std::uint64_t n) const
    {
        return sequentialSec(n * prm.pointBytes);
    }

    /** @return configured parameters. */
    const MemoryParams &params() const { return prm; }

  private:
    MemoryParams prm;
};

} // namespace hgpcn

#endif // HGPCN_SIM_DRAM_MODEL_H
