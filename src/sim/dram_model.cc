#include "sim/dram_model.h"

// DramModel is header-only; this translation unit anchors the
// library target.
