#include "sim/on_chip_memory.h"

namespace hgpcn
{

double
OnChipMemoryModel::fpsFootprintBits(std::uint64_t n,
                                    std::uint64_t k) const
{
    // Raw points (12 B) + float min-distance (4 B) per point, plus
    // the K-entry output buffer.
    const double bytes = static_cast<double>(n) *
                             (cfg.memory.pointBytes + 4.0) +
                         static_cast<double>(k) * 16.0;
    return bytes * 8.0;
}

double
OnChipMemoryModel::oisFootprintBits(std::uint64_t octree_table_bytes,
                                    std::uint64_t k) const
{
    // Octree-Table + 4-byte SPT entries + 64 KiB of pipeline/working
    // buffers (seed registers, comparator state, burst FIFOs).
    const double bytes = static_cast<double>(octree_table_bytes) +
                         static_cast<double>(k) * 4.0 + 64.0 * 1024.0;
    return bytes * 8.0;
}

} // namespace hgpcn
