#include "sim/systolic_array.h"

namespace hgpcn
{

std::uint64_t
SystolicArraySim::gemmCycles(std::uint64_t m, std::uint64_t k,
                             std::uint64_t n) const
{
    if (m == 0 || k == 0 || n == 0)
        return 0;
    const std::uint64_t k_tiles = (k + n_rows - 1) / n_rows;
    const std::uint64_t n_tiles = (n + n_cols - 1) / n_cols;
    const std::uint64_t per_tile = n_rows + m + n_cols;
    return k_tiles * n_tiles * per_tile;
}

std::uint64_t
SystolicArraySim::traceCycles(const ExecutionTrace &trace) const
{
    std::uint64_t total = 0;
    for (const GemmOp &op : trace.gemms)
        total += gemmCycles(op.m, op.k, op.n);
    return total;
}

} // namespace hgpcn
