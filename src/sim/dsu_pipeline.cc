#include "sim/dsu_pipeline.h"

#include <algorithm>

#include "sim/bitonic_sorter.h"

namespace hgpcn
{

const char *
dsuStageName(std::size_t stage)
{
    static const char *names[kStageCount] = {"FP", "LV", "VE",
                                             "GP", "ST", "BF"};
    return stage < kStageCount ? names[stage] : "??";
}

DsuPipelineResult
DsuPipelineSim::run(std::span<const VegTrace> traces,
                    std::size_t k) const
{
    DsuPipelineResult result;
    const BitonicSorterSim sorter(cfg.fpga.bitonicLanes);
    const std::size_t ports = cfg.fpga.dsuLookupPorts;

    for (const VegTrace &trace : traces) {
        std::array<std::uint64_t, kStageCount> c{};

        // FP: read the centroid's coordinates + m-code from the
        // input buffer.
        c[kStageFp] = 1;

        // LV: walk the octree table down to the gathering level.
        c[kStageLv] = static_cast<std::uint64_t>(lv_levels);

        // VE: every ring cell costs one table range-lookup; `ports`
        // lookups proceed per cycle.
        c[kStageVe] =
            (trace.tableLookups + ports - 1) / ports;

        // GP: inner points stream from the (SFC-contiguous) host
        // ranges into the gather buffer, two per cycle.
        c[kStageGp] = (trace.innerPoints + 1) / 2;

        // ST: score the last ring (distance units process 4 points
        // per cycle) then bitonic top-(K - inner).
        const std::uint64_t need =
            k > trace.innerPoints ? k - trace.innerPoints : 0;
        c[kStageSt] = (trace.lastRingPoints + 3) / 4;
        if (need > 0 && trace.lastRingPoints > 0)
            c[kStageSt] +=
                sorter.topKCycles(trace.lastRingPoints, need);

        // BF: emit K neighbors to the FCU buffer, two per cycle.
        c[kStageBf] = (k + 1) / 2;

        for (std::size_t s = 0; s < kStageCount; ++s)
            result.stageCycles[s] += c[s];

        // Pipelined: a centroid occupies the pipe for the duration
        // of its slowest stage once the pipe is full.
        result.pipelinedCycles +=
            *std::max_element(c.begin(), c.end());
    }

    // Pipe fill for the first centroid (other five stages).
    if (!traces.empty())
        result.pipelinedCycles += kStageCount - 1;

    result.pipelinedSec =
        static_cast<double>(result.pipelinedCycles) / cfg.fpga.acceleratorClockHz;
    return result;
}

} // namespace hgpcn
