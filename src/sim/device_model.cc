#include "sim/device_model.h"

#include <algorithm>

namespace hgpcn
{

// ----------------------------------------------------------------------
// Calibration notes
//
// The effective rates below were chosen to land the models on
// published measurements of the same workloads:
//  * PointNet++ SSG classification inference: ~35-120 ms on Jetson
//    Xavier NX (TensorRT to PyTorch), ~10 ms on a 4060Ti-class
//    desktop GPU, ~30 ms on a 10-core AVX-512 Xeon. With the ~8.4e8
//    MACs our trace records for Pointnet++(c), those imply ~25, ~90
//    and ~30 GMAC/s effective GEMM rates — small, gather-heavy
//    layers run far below peak on every device.
//  * Data structuring on GPUs pays a per-centroid serialization cost
//    (grouping kernels launch/synchronize at neighborhood
//    granularity); on CPUs that cost is a function-call-scale
//    constant.
//  * FPS of 1e5 -> 4e3 points: hundreds of ms on CPU (the paper's
//    Fig. 10 baseline), dominated by the K*N re-scan traffic.
//  * The paper (Section I) quotes >200 s to FPS-sample 10% of 1e6
//    points on a GPU — reproduced by per-iteration kernel-launch
//    serialization at K ~ 1e5 plus the re-scan traffic.
// ----------------------------------------------------------------------

DeviceSpec
DeviceModel::xeonW2255()
{
    return DeviceSpec{
        .name = "Xeon W-2255",
        .fpsBytesPerSec = 28e9,
        .dsMacsPerSec = 12e9,
        .gemmMacsPerSec = 30e9,
        .perIterationSec = 0.0,
        .perOpSec = 2e-6,
        .perCentroidSec = 0.3e-6,
        .octreeOpsPerSec = 220e6,
    };
}

DeviceSpec
DeviceModel::jetsonXavierNx()
{
    return DeviceSpec{
        .name = "Jetson Xavier NX",
        .fpsBytesPerSec = 12e9,
        .dsMacsPerSec = 12e9,
        .gemmMacsPerSec = 25e9,
        .perIterationSec = 12e-6,
        .perOpSec = 30e-6,
        .perCentroidSec = 3e-6,
        .octreeOpsPerSec = 60e6,
    };
}

DeviceSpec
DeviceModel::rtx4060Ti()
{
    return DeviceSpec{
        .name = "RTX 4060Ti",
        .fpsBytesPerSec = 120e9,
        .dsMacsPerSec = 35e9,
        .gemmMacsPerSec = 90e9,
        .perIterationSec = 5e-6,
        .perOpSec = 10e-6,
        .perCentroidSec = 1e-6,
        .octreeOpsPerSec = 0.0, // octree build stays on the CPU
    };
}

DeviceSpec
DeviceModel::tx2MobileGpu()
{
    return DeviceSpec{
        .name = "TX2-class mobile GPU",
        .fpsBytesPerSec = 8e9,
        .dsMacsPerSec = 4e9,
        .gemmMacsPerSec = 10e9,
        .perIterationSec = 15e-6,
        .perOpSec = 50e-6,
        .perCentroidSec = 10e-6,
        .octreeOpsPerSec = 0.0,
    };
}

double
DeviceModel::samplingSec(const StatSet &stats,
                         std::uint64_t iterations) const
{
    // Memory traffic of the sampling loop: 12 B per point read, 4 B
    // per intermediate (distance array) access.
    const double bytes =
        static_cast<double>(stats.get("sample.host_reads")) * 12.0 +
        static_cast<double>(stats.get("sample.intermediate_reads") +
                            stats.get("sample.intermediate_writes")) *
            4.0 +
        static_cast<double>(stats.get("sample.host_writes")) * 12.0;
    const double mem_sec = bytes / dev.fpsBytesPerSec;

    // Compute side: one distance = ~8 fused ops; encoder MACs for
    // RS+reinforce.
    const double macs =
        static_cast<double>(stats.get("sample.distance_computations")) *
            8.0 +
        static_cast<double>(stats.get("sample.encoder_macs"));
    const double compute_sec = macs / dev.dsMacsPerSec;

    const double serial_sec =
        static_cast<double>(iterations) * dev.perIterationSec;
    return std::max(mem_sec, compute_sec) + serial_sec;
}

double
DeviceModel::octreeBuildSec(const StatSet &build_stats) const
{
    if (dev.octreeOpsPerSec <= 0.0)
        return 0.0;
    const double ops =
        static_cast<double>(build_stats.get("octree.code_computations")) +
        static_cast<double>(build_stats.get("octree.sort_ops")) +
        static_cast<double>(build_stats.get("octree.host_writes"));
    return ops / dev.octreeOpsPerSec;
}

double
DeviceModel::dsSec(const ExecutionTrace &trace) const
{
    double total = 0.0;
    for (const GatherOp &op : trace.gathers) {
        const double distances = static_cast<double>(
            op.stats.get("gather.distance_computations"));
        const double sort_cands = static_cast<double>(
            op.stats.get("gather.sort_candidates"));
        // Distance = ~8 ops, ranking a candidate = ~4 ops.
        const double macs = distances * 8.0 + sort_cands * 4.0;
        total += macs / dev.dsMacsPerSec + dev.perOpSec +
                 static_cast<double>(op.centroids) *
                     dev.perCentroidSec;
    }
    return total;
}

double
DeviceModel::fcSec(const ExecutionTrace &trace) const
{
    double total = 0.0;
    for (const GemmOp &op : trace.gemms) {
        total += static_cast<double>(op.macs()) / dev.gemmMacsPerSec +
                 dev.perOpSec;
    }
    return total;
}

double
DeviceModel::fcSecStacked(
    std::span<const ExecutionTrace *const> traces) const
{
    // Batched execution dispatches each layer once for the whole
    // batch; MAC time is rate-linear, so only the per-op overhead
    // merges. Layer count per frame is architectural (all frames
    // run one deployed net), so the widest trace carries the
    // merged op count.
    double mac_sec = 0.0;
    std::size_t merged_ops = 0;
    for (const ExecutionTrace *trace : traces) {
        merged_ops = std::max(merged_ops, trace->gemms.size());
        for (const GemmOp &op : trace->gemms)
            mac_sec += static_cast<double>(op.macs()) /
                       dev.gemmMacsPerSec;
    }
    return mac_sec +
           static_cast<double>(merged_ops) * dev.perOpSec;
}

} // namespace hgpcn
