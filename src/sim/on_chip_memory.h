/**
 * @file
 * FPGA on-chip memory footprint model (paper Fig. 13).
 *
 * An FPS-style pre-processing engine must keep the raw frame and its
 * intermediate distance array on chip; beyond ~5e5 points that
 * exceeds the Arria 10's 65 Mb and leaves no room for the Inference
 * Engine (Section VII-C). OIS stores only the Octree-Table plus a
 * small working set (~10 Mb even at 1e6 points).
 */

#ifndef HGPCN_SIM_ON_CHIP_MEMORY_H
#define HGPCN_SIM_ON_CHIP_MEMORY_H

#include <cstdint>

#include "sim/sim_config.h"

namespace hgpcn
{

/** On-chip footprint calculator. */
class OnChipMemoryModel
{
  public:
    explicit OnChipMemoryModel(const SimConfig &config) : cfg(config) {}

    /**
     * @return bits an on-FPGA FPS engine needs for an @p n-point
     * frame: the points themselves, the per-point minimum-distance
     * array and a @p k-entry result buffer.
     */
    double fpsFootprintBits(std::uint64_t n, std::uint64_t k) const;

    /**
     * @return bits the OIS engine needs: the Octree-Table image, the
     * Sampled-Points-Table and fixed pipeline buffers.
     */
    double oisFootprintBits(std::uint64_t octree_table_bytes,
                            std::uint64_t k) const;

    /** @return true when @p bits fit the device. */
    bool
    fits(double bits) const
    {
        return bits <= cfg.fpga.onChipBits;
    }

    /** @return device capacity in bits. */
    double capacityBits() const { return cfg.fpga.onChipBits; }

  private:
    SimConfig cfg;
};

} // namespace hgpcn

#endif // HGPCN_SIM_ON_CHIP_MEMORY_H
