#include "sim/sim_config.h"

#include <sstream>

namespace hgpcn
{

std::string
SimConfig::describe() const
{
    std::ostringstream oss;
    oss << "FPGA " << fpga.clockHz / 1e6 << " MHz, "
        << fpga.samplingModules << " sampling modules, "
        << fpga.systolicRows << "x" << fpga.systolicCols
        << " systolic FCU, " << fpga.onChipBits / 1e6
        << " Mb on-chip RAM; DRAM " << memory.bandwidthBytesPerSec / 1e9
        << " GB/s, " << memory.randomAccessSec * 1e9
        << " ns random access; MMIO "
        << mmio.bandwidthBytesPerSec / 1e9 << " GB/s";
    return oss.str();
}

} // namespace hgpcn
