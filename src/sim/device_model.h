/**
 * @file
 * Analytical models of the paper's general-purpose baseline devices.
 *
 * Substitution note (docs/DESIGN.md §2): we do not have an Intel Xeon
 * W-2255, an Nvidia Jetson Xavier NX or an RTX 4060Ti. The paper's
 * baseline numbers are throughput-bound, so each device is modeled
 * by a small set of *effective* rates — calibrated against published
 * PointNet++ and FPS measurements (see device_model.cc) — applied to
 * the exact workload counters our functional implementations record.
 * The models intentionally avoid microarchitectural detail: the
 * reproduced quantity is the latency *shape* across datasets and
 * devices, not absolute nanoseconds.
 */

#ifndef HGPCN_SIM_DEVICE_MODEL_H
#define HGPCN_SIM_DEVICE_MODEL_H

#include <span>
#include <string>

#include "common/stats.h"
#include "nn/layer_trace.h"

namespace hgpcn
{

/** Effective-rate description of one device. */
struct DeviceSpec
{
    std::string name;

    /** Effective bandwidth for the FPS access pattern (point
     * streaming + distance array), bytes/s. */
    double fpsBytesPerSec;

    /** Effective distance-computation rate in data-structuring
     * kernels (gather/scatter bound), MACs/s. */
    double dsMacsPerSec;

    /** Effective GEMM rate on PCN-sized layers, MACs/s. */
    double gemmMacsPerSec;

    /** Serialization overhead per FPS iteration (kernel launch +
     * sync on GPUs; ~0 on CPUs). */
    double perIterationSec;

    /** Overhead per layer-scale operation (kernel/op dispatch). */
    double perOpSec;

    /** Per-centroid overhead in data-structuring kernels (grouping
     * kernel serialization, gather/scatter launch granularity). */
    double perCentroidSec;

    /** Effective rate for octree construction (code+sort), ops/s. */
    double octreeOpsPerSec;
};

/** Timing model of one baseline device. */
class DeviceModel
{
  public:
    explicit DeviceModel(const DeviceSpec &spec) : dev(spec) {}

    /** @return the spec. */
    const DeviceSpec &spec() const { return dev; }

    /**
     * Time a down-sampling run from sampler counters
     * ("sample.host_reads", "sample.intermediate_*", ...).
     *
     * @param stats Counters from FpsSampler/RandomSampler/....
     * @param iterations Sequential picks (K) — serialization floor.
     */
    double samplingSec(const StatSet &stats,
                       std::uint64_t iterations) const;

    /** Time the Octree-build Unit's work from its build counters. */
    double octreeBuildSec(const StatSet &build_stats) const;

    /** Time the data-structuring part of an inference trace. */
    double dsSec(const ExecutionTrace &trace) const;

    /** Time the feature-computation part of an inference trace. */
    double fcSec(const ExecutionTrace &trace) const;

    /**
     * fcSec() over several frames' traces executed as one batched
     * pass: MAC work is unchanged, but the per-op dispatch
     * overhead is paid once per merged layer instead of once per
     * frame. A single-frame span equals fcSec(trace) exactly.
     */
    double fcSecStacked(
        std::span<const ExecutionTrace *const> traces) const;

    /** @return dsSec + fcSec (no DS/FC overlap on these devices). */
    double
    inferenceSec(const ExecutionTrace &trace) const
    {
        return dsSec(trace) + fcSec(trace);
    }

    // ------------------------------------------------------------------
    // The paper's three baseline devices (Section VII-A).
    // ------------------------------------------------------------------

    /** Intel Xeon W-2255 (10C/20T, AVX-512). */
    static DeviceSpec xeonW2255();

    /** Nvidia Jetson Xavier NX (384-core Volta, LPDDR4x). */
    static DeviceSpec jetsonXavierNx();

    /** Nvidia RTX 4060Ti (desktop Ada, GDDR6). */
    static DeviceSpec rtx4060Ti();

    /** TX2-class mobile Pascal GPU (the SoC GPU Mesorasi pairs its
     * NPU with; weaker than the Xavier NX baseline). */
    static DeviceSpec tx2MobileGpu();

  private:
    DeviceSpec dev;
};

} // namespace hgpcn

#endif // HGPCN_SIM_DEVICE_MODEL_H
