/**
 * @file
 * Hardware parameters of the simulated HgPCN platform.
 *
 * Substitution note (docs/DESIGN.md §2): the paper prototypes HgPCN on an
 * Intel PAC card (Xeon + Arria 10 GX 1150 FPGA over a shared-memory
 * link). We do not have that hardware, so every architectural unit is
 * simulated at cycle level with the parameters below. All constants
 * are centralised here and printed by the benches so results are
 * auditable; docs/EXPERIMENTS.md records how measured shapes compare with
 * the paper's.
 */

#ifndef HGPCN_SIM_SIM_CONFIG_H
#define HGPCN_SIM_SIM_CONFIG_H

#include <cstddef>
#include <string>

namespace hgpcn
{

/** FPGA fabric parameters (Arria 10 GX 1150-class). */
struct FpgaParams
{
    /** Pre-processing fabric clock (the FPGA prototype's
     * Down-sampling Unit). Arria 10 designs close timing at
     * 200-300 MHz; we use the middle of that band. */
    double clockHz = 250e6;

    /** Inference-accelerator comparison clock. The paper compares
     * HgPCN's Inference Engine against PointACC and Mesorasi "with
     * 16x16 systolic arrays" — iso-throughput feature computation.
     * PointACC is a 1 GHz ASIC, so the DSU/FCU and both baseline
     * accelerators are timed at 1 GHz to isolate the architectural
     * (data-structuring) difference the paper evaluates. */
    double acceleratorClockHz = 1e9;

    /** Parallel Sampling Modules in the Down-sampling Unit
     * (Fig. 7(b): eight, one per child octant). */
    std::size_t samplingModules = 8;

    /** Elements the bitonic sorter network ingests per cycle. */
    std::size_t bitonicLanes = 64;

    /** Parallel Octree-Table lookup ports of the DSU. */
    std::size_t dsuLookupPorts = 8;

    /** Systolic array geometry of the FCU (16x16, matching the
     * PointACC/Mesorasi comparison setup of Section VII-A). */
    std::size_t systolicRows = 16;
    std::size_t systolicCols = 16;

    /** Total on-chip RAM, bits (Arria 10 GX 1150: 65 Mb). */
    double onChipBits = 65e6;
};

/** Shared host-memory (DDR4) parameters. */
struct MemoryParams
{
    /** Effective sequential bandwidth seen by the FPGA. */
    double bandwidthBytesPerSec = 16e9;

    /** Latency of one dependent random access. */
    double randomAccessSec = 80e-9;

    /** Burst granularity. */
    std::size_t burstBytes = 64;

    /** Bytes of one stored point (x, y, z as float). */
    std::size_t pointBytes = 12;
};

/** CPU-to-FPGA MMIO link (Octree-Table transfer path). */
struct MmioParams
{
    double bandwidthBytesPerSec = 2e9;
    double latencySec = 2e-6;
};

/** Full platform configuration. */
struct SimConfig
{
    FpgaParams fpga;
    MemoryParams memory;
    MmioParams mmio;

    /** @return the default (paper-prototype-like) platform. */
    static SimConfig
    defaults()
    {
        return SimConfig{};
    }

    /** @return a one-line description for bench headers. */
    std::string describe() const;
};

} // namespace hgpcn

#endif // HGPCN_SIM_SIM_CONFIG_H
