/**
 * @file
 * Feature Computation Unit (commercial-style DLA) model.
 *
 * The FCU consumes the input feature maps the DSU buffers and runs
 * the PCN's GEMMs on a weight-stationary systolic array (Section VI).
 * Activation/weight streaming from host memory is overlapped with
 * compute; the model charges whichever is larger per layer.
 */

#ifndef HGPCN_SIM_FCU_DLA_H
#define HGPCN_SIM_FCU_DLA_H

#include <cstdint>
#include <span>

#include "nn/layer_trace.h"
#include "sim/sim_config.h"

namespace hgpcn
{

/** Latency result of an FCU inference pass. */
struct FcuResult
{
    std::uint64_t computeCycles = 0; //!< systolic cycles
    double computeSec = 0.0;
    double memorySec = 0.0; //!< non-overlapped weight/activation IO
    std::uint64_t macs = 0;

    /** @return end-to-end seconds (compute/memory overlapped). */
    double
    totalSec() const
    {
        return computeSec > memorySec ? computeSec : memorySec;
    }

    /** @return achieved fraction of peak MACs. */
    double utilization = 0.0;
};

/** DLA timing model. */
class FcuSim
{
  public:
    explicit FcuSim(const SimConfig &config) : cfg(config) {}

    /** Time every GEMM of @p trace. */
    FcuResult run(const ExecutionTrace &trace) const;

    /**
     * Time several frames' GEMMs as ONE batched pass: same-layer
     * ops are merged in first-seen order (row counts summed), so
     * each weight tile is loaded — and each systolic tile filled
     * and drained — once per batch instead of once per frame, and
     * the weight half of the memory traffic is fetched once. This
     * is the device-occupancy cost the virtual timeline charges
     * for a batch; a single-frame span reduces to run() exactly.
     */
    FcuResult runStacked(
        std::span<const ExecutionTrace *const> traces) const;

  private:
    SimConfig cfg;
};

} // namespace hgpcn

#endif // HGPCN_SIM_FCU_DLA_H
