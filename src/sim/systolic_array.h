/**
 * @file
 * Systolic-array (FCU / DLA) cycle model.
 *
 * The Feature Computation Unit is a commercial-style DLA built
 * around a classic weight-stationary systolic array (Section VI);
 * the paper configures 16x16 for HgPCN, PointACC and Mesorasi alike
 * so the feature-computation time cancels out of the comparison and
 * the data-structuring difference dominates.
 */

#ifndef HGPCN_SIM_SYSTOLIC_ARRAY_H
#define HGPCN_SIM_SYSTOLIC_ARRAY_H

#include <cstdint>

#include "nn/layer_trace.h"
#include "sim/sim_config.h"

namespace hgpcn
{

/** Weight-stationary systolic array model. */
class SystolicArraySim
{
  public:
    /**
     * @param rows PE rows (reduction/K dimension).
     * @param cols PE columns (output/N dimension).
     */
    SystolicArraySim(std::size_t rows, std::size_t cols)
        : n_rows(rows), n_cols(cols)
    {}

    /**
     * @return cycles for one [M,K]x[K,N] GEMM: the weight matrix is
     * tiled into ceil(K/rows) x ceil(N/cols) tiles; each tile loads
     * its weights (rows cycles), streams the M activations and
     * drains the pipeline (rows + cols cycles).
     */
    std::uint64_t gemmCycles(std::uint64_t m, std::uint64_t k,
                             std::uint64_t n) const;

    /** @return cycles to execute every GEMM of @p trace. */
    std::uint64_t traceCycles(const ExecutionTrace &trace) const;

    /** @return peak MACs per cycle (rows * cols). */
    std::uint64_t
    peakMacsPerCycle() const
    {
        return static_cast<std::uint64_t>(n_rows) * n_cols;
    }

  private:
    std::size_t n_rows;
    std::size_t n_cols;
};

} // namespace hgpcn

#endif // HGPCN_SIM_SYSTOLIC_ARRAY_H
