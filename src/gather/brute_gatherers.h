/**
 * @file
 * Brute-force data structuring baselines.
 *
 * The traditional method (Section II-A): for every central point,
 * compute the distance to every other point of the input cloud and
 * rank them. These are the workloads PointACC's Mapping Unit and
 * Mesorasi's GPU kernels execute, and the reference against which
 * VEG's reduction (Fig. 15) is measured.
 */

#ifndef HGPCN_GATHER_BRUTE_GATHERERS_H
#define HGPCN_GATHER_BRUTE_GATHERERS_H

#include "gather/gatherer.h"

namespace hgpcn
{

/** Exact K-nearest-neighbors by full scan + partial sort. */
class BruteKnn : public Gatherer
{
  public:
    /** @param cloud Cloud to gather from; must outlive the gatherer. */
    explicit BruteKnn(const PointCloud &cloud) : points(cloud) {}

    GatherResult gather(std::span<const PointIndex> centrals,
                        std::size_t k) override;

    std::string name() const override { return "KNN-brute"; }

  private:
    const PointCloud &points;
};

/**
 * Exact Ball Query by full scan: up to K points within @p radius of
 * the centroid, padded PointNet++-style by repeating the first hit
 * (or the centroid itself when nothing is in range).
 */
class BruteBallQuery : public Gatherer
{
  public:
    /**
     * @param cloud Cloud to gather from; must outlive the gatherer.
     * @param radius Ball radius in cloud units.
     */
    BruteBallQuery(const PointCloud &cloud, float radius)
        : points(cloud), r(radius)
    {}

    GatherResult gather(std::span<const PointIndex> centrals,
                        std::size_t k) override;

    std::string name() const override { return "BQ-brute"; }

    /** @return configured ball radius. */
    float radius() const { return r; }

  private:
    const PointCloud &points;
    float r;
};

} // namespace hgpcn

#endif // HGPCN_GATHER_BRUTE_GATHERERS_H
