#include "gather/brute_gatherers.h"

#include <algorithm>

#include "common/logging.h"
#include "knn/top_k.h"

namespace hgpcn
{

GatherResult
BruteKnn::gather(std::span<const PointIndex> centrals, std::size_t k)
{
    const std::size_t n = points.size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    GatherResult result;
    result.k = k;
    result.neighbors.reserve(centrals.size() * k);

    std::uint64_t dist_computes = 0;
    std::uint64_t sort_candidates = 0;

    std::vector<ScoredNeighbor> scored(n);
    for (PointIndex c : centrals) {
        const Vec3 anchor = points.position(c);
        for (std::size_t i = 0; i < n; ++i) {
            scored[i].first =
                points.position(static_cast<PointIndex>(i))
                    .distSq(anchor);
            scored[i].second = static_cast<PointIndex>(i);
        }
        dist_computes += n;
        sort_candidates += n;
        // Shared top-K selection with the (distSq, index) tie-break
        // (knn/top_k.h; heap select — see there before changing it).
        selectTopK(scored, k);
        for (std::size_t j = 0; j < k; ++j)
            result.neighbors.push_back(scored[j].second);
    }

    result.stats.set("gather.distance_computations", dist_computes);
    result.stats.set("gather.sort_candidates", sort_candidates);
    return result;
}

GatherResult
BruteBallQuery::gather(std::span<const PointIndex> centrals,
                       std::size_t k)
{
    const std::size_t n = points.size();
    HGPCN_ASSERT(k >= 1, "k=", k);

    GatherResult result;
    result.k = k;
    result.neighbors.reserve(centrals.size() * k);

    std::uint64_t dist_computes = 0;
    const float r_sq = r * r;

    for (PointIndex c : centrals) {
        const Vec3 anchor = points.position(c);
        std::size_t found = 0;
        PointIndex pad = c; // fall back to the centroid itself
        // The reference kernel computes every distance even after K
        // hits are collected (the scan is data-independent).
        for (std::size_t i = 0; i < n; ++i) {
            const float d =
                points.position(static_cast<PointIndex>(i))
                    .distSq(anchor);
            if (d <= r_sq && found < k) {
                if (found == 0)
                    pad = static_cast<PointIndex>(i);
                result.neighbors.push_back(static_cast<PointIndex>(i));
                ++found;
            }
        }
        dist_computes += n;
        for (std::size_t j = found; j < k; ++j)
            result.neighbors.push_back(pad);
    }

    result.stats.set("gather.distance_computations", dist_computes);
    result.stats.set("gather.sort_candidates", 0);
    return result;
}

} // namespace hgpcn
