/**
 * @file
 * Voxel-Expanded Gathering (paper Section VI).
 *
 * VEG narrows the nearest-neighbor search range through the octree's
 * adjacent-indexing before any sorting happens. For a central point:
 *
 *   ring 0 = its voxel Vseed, ring 1 = the 26 touching voxels (V1),
 *   ring 2 = the next shell (V2), ... Expansion stops at the first
 *   ring n where the cumulative point count reaches K. Rings 0..n-1
 *   ("inner" points, N0+...+N(n-1)) are gathered with *no* distance
 *   computation; only the Nn points of ring n are distance-scored and
 *   sorted to select the remaining K - inner neighbors.
 *
 * The paper calls this accurate. Strictly, a far-corner inner-ring
 * point can lose to a near-face last-ring point, so we provide three
 * modes:
 *
 *  - Paper:      exactly the method above (default);
 *  - Strict:     keep expanding until no unscanned ring can contain a
 *                closer point, score every candidate — provably equal
 *                to brute KNN, still local;
 *  - SemiApprox: Section VIII future work — the last ring's
 *                contribution is picked randomly, no sort at all.
 *
 * Ball Query support (VegBallQuery) expands rings until the ring's
 * minimum possible distance exceeds the radius.
 */

#ifndef HGPCN_GATHER_VEG_GATHERER_H
#define HGPCN_GATHER_VEG_GATHERER_H

#include <memory>

#include "common/rng.h"
#include "gather/gatherer.h"
#include "octree/octree.h"
#include "octree/voxel_grid.h"

namespace hgpcn
{

class FrameWorkspace;

/** Gathering flavor; see file comment. */
enum class VegMode
{
    Paper,
    Strict,
    SemiApprox,
};

/** @return printable name of a VegMode. */
const char *toString(VegMode mode);

/**
 * KNN data structuring by voxel expansion over an octree.
 *
 * Point indices (centroids and neighbors) refer to the octree's
 * SFC-reordered cloud.
 */
class VegKnn : public Gatherer
{
  public:
    /** Parameters. */
    struct Config
    {
        /** Grid level used for ring expansion. -1 (default) selects
         * the level *per centroid* from the octree leaf containing
         * it — the paper's "locate the voxel that contains the
         * central point" — which adapts ring granularity to the
         * local density (crucial for LiDAR-style non-uniform
         * clouds). A non-negative value forces one global level. */
        int gridLevel = -1;
        /** Gathering flavor. */
        VegMode mode = VegMode::Paper;
        /** RNG seed (SemiApprox picks randomly). */
        std::uint64_t seed = 1;
    };

    /**
     * @param tree Octree over the down-sampled input cloud; must
     *             outlive the gatherer.
     */
    /** Create with default configuration. */
    explicit VegKnn(const Octree &tree);

    /**
     * @param workspace Optional scratch arena: ring/score buffers
     * come from the workspace instead of per-gather allocations
     * (core/frame_workspace.h).
     */
    VegKnn(const Octree &tree, const Config &config,
           FrameWorkspace *workspace = nullptr);

    GatherResult gather(std::span<const PointIndex> centrals,
                        std::size_t k) override;

    /**
     * Gather around arbitrary query coordinates (the DSU's Fetch
     * Central Point stage works on coordinates+m-codes, so queries
     * need not be cloud members — used by FP-layer interpolation).
     * Neighbor indices refer to the octree's reordered cloud.
     */
    GatherResult gatherAt(std::span<const Vec3> anchors, std::size_t k);

    std::string name() const override;

    /** @return the expansion level used for @p anchor. */
    int levelFor(const Vec3 &anchor) const;

  private:
    const Octree &octree;
    Config cfg;
    FrameWorkspace *workspace;
    /** One grid view per level, created on first use. */
    mutable std::vector<std::unique_ptr<VoxelGrid>> grids;

    const VoxelGrid &gridAt(int level) const;
};

/**
 * Ball-Query data structuring by voxel expansion.
 */
class VegBallQuery : public Gatherer
{
  public:
    /** Parameters. */
    struct Config
    {
        /** Ball radius in cloud units. */
        float radius = 0.2f;
        /** Grid level; -1 = auto (cell edge matched to radius so
         * one or two expansions cover the ball). */
        int gridLevel = -1;
    };

    /** @param tree Octree over the input cloud; must outlive this. */
    explicit VegBallQuery(const Octree &tree, const Config &config);

    GatherResult gather(std::span<const PointIndex> centrals,
                        std::size_t k) override;

    std::string name() const override { return "VEG-BQ"; }

  private:
    const Octree &octree;
    Config cfg;
    VoxelGrid grid;
};

} // namespace hgpcn

#endif // HGPCN_GATHER_VEG_GATHERER_H
