#include "gather/veg_gatherer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/frame_workspace.h"
#include "knn/top_k.h"

namespace hgpcn
{

const char *
toString(VegMode mode)
{
    switch (mode) {
      case VegMode::Paper:
        return "VEG";
      case VegMode::Strict:
        return "VEG-strict";
      case VegMode::SemiApprox:
        return "VEG-semi";
    }
    return "VEG-?";
}

VegKnn::VegKnn(const Octree &tree) : VegKnn(tree, Config{}) {}

VegKnn::VegKnn(const Octree &tree, const Config &config,
               FrameWorkspace *ws)
    : octree(tree), cfg(config), workspace(ws),
      grids(static_cast<std::size_t>(tree.config().maxDepth) + 1)
{
    HGPCN_ASSERT(cfg.gridLevel <= tree.config().maxDepth,
                 "gridLevel ", cfg.gridLevel, " exceeds octree depth");
}

std::string
VegKnn::name() const
{
    return toString(cfg.mode);
}

const VoxelGrid &
VegKnn::gridAt(int level) const
{
    auto &slot = grids[static_cast<std::size_t>(level)];
    if (!slot)
        slot = std::make_unique<VoxelGrid>(octree, level);
    return *slot;
}

int
VegKnn::levelFor(const Vec3 &anchor) const
{
    if (cfg.gridLevel >= 0)
        return cfg.gridLevel;
    // Locate Central Voxel (LV stage): the octree leaf containing
    // the centroid sets the expansion granularity, adapting ring
    // sizes to the local point density.
    const NodeIndex leaf = octree.findLeaf(anchor);
    const int level = octree.node(leaf).level;
    return level < 1 ? 1 : level;
}

GatherResult
VegKnn::gather(std::span<const PointIndex> centrals, std::size_t k)
{
    const PointCloud &cloud = octree.reorderedCloud();
    std::vector<Vec3> anchors;
    anchors.reserve(centrals.size());
    for (PointIndex c : centrals)
        anchors.push_back(cloud.position(c));
    return gatherAt(anchors, k);
}

GatherResult
VegKnn::gatherAt(std::span<const Vec3> anchors, std::size_t k)
{
    const PointCloud &cloud = octree.reorderedCloud();
    const std::size_t n = cloud.size();
    HGPCN_ASSERT(k >= 1 && k <= n, "k=", k, " n=", n);

    GatherResult result;
    result.k = k;
    result.neighbors.reserve(anchors.size() * k);
    result.traces.reserve(anchors.size());

    std::uint64_t dist_computes = 0;
    std::uint64_t sort_candidates = 0;
    std::uint64_t table_lookups = 0;
    std::uint64_t rings_total = 0;
    std::uint64_t inner_total = 0;

    Rng rng(cfg.seed);

    std::vector<PointIndex> own_inner;
    std::vector<PointIndex> own_last_ring;
    std::vector<std::pair<float, PointIndex>> own_scored;
    std::vector<PointIndex> &inner =
        workspace != nullptr ? workspace->knn.inner : own_inner;
    std::vector<PointIndex> &last_ring =
        workspace != nullptr ? workspace->knn.lastRing : own_last_ring;
    std::vector<std::pair<float, PointIndex>> &scored =
        workspace != nullptr ? workspace->knn.scored : own_scored;

    for (const Vec3 &anchor : anchors) {
        // Stage 1-2 (FP, LV): fetch the centroid, locate its voxel.
        const VoxelGrid &grid = gridAt(levelFor(anchor));
        const GridCell seed_cell = grid.cellOf(anchor);
        const int max_ring = grid.cellsPerAxis();
        const float cell =
            morton::voxelSize(grid.level(), octree.rootBounds());

        VegTrace trace;
        inner.clear();
        last_ring.clear();

        if (cfg.mode == VegMode::Strict) {
            // Expand until no unscanned ring can hold a closer point:
            // a ring-r point is at least (r-1)*cell away from the
            // centroid, so once (r-1)*cell exceeds the current K-th
            // best distance the candidate set is complete.
            scored.clear();
            int r = 0;
            float kth_dist = std::numeric_limits<float>::max();
            while (r <= max_ring) {
                last_ring.clear();
                const std::size_t lookups =
                    grid.gatherRingPoints(seed_cell, r, last_ring);
                trace.tableLookups +=
                    static_cast<std::uint32_t>(lookups);
                for (PointIndex p : last_ring)
                    scored.emplace_back(
                        cloud.position(p).distSq(anchor), p);
                dist_computes += last_ring.size();
                if (scored.size() >= k) {
                    kth_dist = kthSmallest(scored, k).first;
                    const float ring_min =
                        static_cast<float>(r) * cell; // next ring
                    if (ring_min * ring_min > kth_dist)
                        break;
                }
                ++r;
            }
            HGPCN_ASSERT(scored.size() >= k,
                         "strict VEG exhausted the grid below k");
            trace.rings = static_cast<std::uint32_t>(r);
            trace.lastRingPoints =
                static_cast<std::uint32_t>(scored.size());
            sort_candidates += scored.size();
            selectTopK(scored, k);
            for (std::size_t j = 0; j < k; ++j)
                result.neighbors.push_back(scored[j].second);
        } else {
            // Stage 3 (VE): expand rings until cumulative count >= K.
            std::size_t total = 0;
            int r = 0;
            while (r <= max_ring) {
                const std::uint32_t ring_count =
                    grid.ringPointCount(seed_cell, r);
                // Counting touches each in-grid ring cell once (the
                // closed-form count: the host need not walk them).
                trace.tableLookups += static_cast<std::uint32_t>(
                    grid.shellCellCount(seed_cell, r));
                if (total + ring_count >= k) {
                    // Stage 4 (GP): inner rings gathered blind.
                    last_ring.clear();
                    grid.gatherRingPoints(seed_cell, r, last_ring);
                    break;
                }
                total += ring_count;
                grid.gatherRingPoints(seed_cell, r, inner);
                ++r;
            }
            HGPCN_ASSERT(inner.size() + last_ring.size() >= k,
                         "VEG expansion exhausted the grid below k");
            trace.rings = static_cast<std::uint32_t>(r);
            trace.innerPoints =
                static_cast<std::uint32_t>(inner.size());
            trace.lastRingPoints =
                static_cast<std::uint32_t>(last_ring.size());
            inner_total += inner.size();

            for (PointIndex p : inner)
                result.neighbors.push_back(p);
            const std::size_t need = k - inner.size();

            if (cfg.mode == VegMode::SemiApprox) {
                // Future-work variant: random picks from the last
                // ring, no distance computation at all.
                for (std::size_t j = 0; j < need; ++j) {
                    const std::size_t pick =
                        j + static_cast<std::size_t>(
                                rng.below(last_ring.size() - j));
                    std::swap(last_ring[j], last_ring[pick]);
                    result.neighbors.push_back(last_ring[j]);
                }
            } else {
                // Stage 5 (ST): score and sort only the last ring.
                scored.clear();
                scored.reserve(last_ring.size());
                for (PointIndex p : last_ring)
                    scored.emplace_back(
                        cloud.position(p).distSq(anchor), p);
                dist_computes += last_ring.size();
                sort_candidates += last_ring.size();
                selectTopK(scored, need);
                for (std::size_t j = 0; j < need; ++j)
                    result.neighbors.push_back(scored[j].second);
            }
        }

        rings_total += trace.rings;
        table_lookups += trace.tableLookups;
        result.traces.push_back(trace);
    }

    result.stats.set("gather.distance_computations", dist_computes);
    result.stats.set("gather.sort_candidates", sort_candidates);
    result.stats.set("gather.table_lookups", table_lookups);
    result.stats.set("gather.rings_expanded", rings_total);
    result.stats.set("gather.inner_points", inner_total);
    return result;
}

namespace
{

/** Level whose cell edge best matches the query radius. */
int
radiusMatchedLevel(const Octree &tree, float radius)
{
    const float root_side =
        morton::voxelSize(0, tree.rootBounds());
    HGPCN_ASSERT(radius > 0.0f, "radius must be positive");
    const int level = static_cast<int>(
        std::floor(std::log2(root_side / radius)));
    return std::clamp(level, 1, tree.config().maxDepth);
}

} // namespace

VegBallQuery::VegBallQuery(const Octree &tree, const Config &config)
    : octree(tree), cfg(config),
      grid(tree, config.gridLevel >= 0
                     ? config.gridLevel
                     : radiusMatchedLevel(tree, config.radius))
{}

GatherResult
VegBallQuery::gather(std::span<const PointIndex> centrals, std::size_t k)
{
    const PointCloud &cloud = octree.reorderedCloud();
    HGPCN_ASSERT(k >= 1, "k=", k);

    GatherResult result;
    result.k = k;
    result.neighbors.reserve(centrals.size() * k);
    result.traces.reserve(centrals.size());

    std::uint64_t dist_computes = 0;
    std::uint64_t table_lookups = 0;

    const float cell = morton::voxelSize(grid.level(),
                                         octree.rootBounds());
    const float r_sq = cfg.radius * cfg.radius;
    // A ring-r point is at least (r-1)*cell from the centroid, so
    // rings beyond radius/cell + 1 cannot intersect the ball.
    const int rings_needed =
        static_cast<int>(std::ceil(cfg.radius / cell)) + 1;

    std::vector<PointIndex> candidates;

    for (PointIndex c : centrals) {
        const Vec3 anchor = cloud.position(c);
        const GridCell seed_cell = grid.cellOf(anchor);

        VegTrace trace;
        candidates.clear();
        for (int r = 0; r <= rings_needed; ++r) {
            const std::size_t lookups =
                grid.gatherRingPoints(seed_cell, r, candidates);
            trace.tableLookups += static_cast<std::uint32_t>(lookups);
        }
        trace.rings = static_cast<std::uint32_t>(rings_needed);
        trace.lastRingPoints =
            static_cast<std::uint32_t>(candidates.size());

        std::size_t found = 0;
        PointIndex pad = c;
        for (PointIndex p : candidates) {
            const float d = cloud.position(p).distSq(anchor);
            if (d <= r_sq && found < k) {
                if (found == 0)
                    pad = p;
                result.neighbors.push_back(p);
                ++found;
            }
        }
        dist_computes += candidates.size();
        for (std::size_t j = found; j < k; ++j)
            result.neighbors.push_back(pad);

        table_lookups += trace.tableLookups;
        result.traces.push_back(trace);
    }

    result.stats.set("gather.distance_computations", dist_computes);
    result.stats.set("gather.table_lookups", table_lookups);
    return result;
}

} // namespace hgpcn
