/**
 * @file
 * Data-structuring (neighbor gathering) interface.
 *
 * The data structuring step forms the "input feature map" of a PCN by
 * gathering, for every central point, its K nearest neighbors (KNN)
 * or up-to-K neighbors within a radius (Ball Query) — Section II-A.
 * Implementations report workload through shared counters:
 *
 *  - "gather.distance_computations" point-to-centroid distances
 *  - "gather.sort_candidates"       points entering the top-K sorter
 *  - "gather.table_lookups"         octree-table lookups (VEG)
 *  - "gather.rings_expanded"        voxel expansions (VEG)
 *  - "gather.inner_points"          points gathered with no compute
 */

#ifndef HGPCN_GATHER_GATHERER_H
#define HGPCN_GATHER_GATHERER_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"
#include "geometry/point_cloud.h"

namespace hgpcn
{

/**
 * Per-centroid trace of a Voxel-Expanded Gathering run; drives the
 * DSU pipeline simulator (Fig. 8) and the Fig. 15/16 benches.
 */
struct VegTrace
{
    std::uint32_t rings = 0;          //!< n: index of the last ring
    std::uint32_t innerPoints = 0;    //!< N0 + ... + N(n-1)
    std::uint32_t lastRingPoints = 0; //!< Nn (the only sorted set)
    std::uint32_t tableLookups = 0;   //!< ring-cell range lookups
};

/** Output of a gathering pass. */
struct GatherResult
{
    /** Neighbors per centroid, flattened: centroid c's neighbors are
     * neighbors[c*k .. c*k+k). */
    std::vector<PointIndex> neighbors;

    /** Neighbors gathered per centroid. */
    std::size_t k = 0;

    /** Per-centroid VEG traces (empty for brute-force methods). */
    std::vector<VegTrace> traces;

    /** Workload accounting (see file comment for counter names). */
    StatSet stats;

    /** @return neighbors of centroid @p c. */
    std::span<const PointIndex>
    of(std::size_t c) const
    {
        return {neighbors.data() + c * k, k};
    }

    /** @return number of centroids gathered. */
    std::size_t
    centroids() const
    {
        return k == 0 ? 0 : neighbors.size() / k;
    }
};

/**
 * Abstract neighbor gatherer over a fixed point cloud.
 */
class Gatherer
{
  public:
    virtual ~Gatherer() = default;

    /**
     * Gather @p k neighbors for every centroid.
     *
     * @param centrals Centroid point indices (into the gatherer's
     *                 cloud).
     * @param k Neighbors per centroid.
     */
    virtual GatherResult gather(std::span<const PointIndex> centrals,
                                std::size_t k) = 0;

    /** @return short method name for reports. */
    virtual std::string name() const = 0;
};

} // namespace hgpcn

#endif // HGPCN_GATHER_GATHERER_H
