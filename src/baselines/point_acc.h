/**
 * @file
 * PointACC [16] behavioural model.
 *
 * PointACC pairs a 16x16 systolic array with a Mapping Unit that
 * performs exact data structuring: for every central point it
 * computes the distance to *every* input point and bitonic-sorts the
 * full candidate list for the top K (Section VII-D: "the searched
 * range of PointACC's bitonic sorter is over the entire input point
 * cloud"). DS and FC are overlapped. The architectural difference to
 * HgPCN's DSU is therefore exactly the sorter workload — the entire
 * cloud versus VEG's last ring Nn (Fig. 15).
 *
 * The model runs at the same fabric clock and systolic geometry as
 * HgPCN so that feature computation cancels out of the comparison,
 * as the paper's setup intends.
 */

#ifndef HGPCN_BASELINES_POINT_ACC_H
#define HGPCN_BASELINES_POINT_ACC_H

#include <cstdint>

#include "nn/layer_trace.h"
#include "sim/sim_config.h"

namespace hgpcn
{

/** Latency result of a PointACC inference pass. */
struct PointAccResult
{
    double mappingSec = 0.0; //!< Mapping Unit (data structuring)
    double fcSec = 0.0;      //!< systolic feature computation
    std::uint64_t sortCandidates = 0; //!< elements fed to the sorter

    /** @return end-to-end seconds with DS/FC overlap. */
    double
    totalSec() const
    {
        return mappingSec > fcSec ? mappingSec : fcSec;
    }
};

/** PointACC timing model. */
class PointAccSim
{
  public:
    explicit PointAccSim(const SimConfig &config) : cfg(config) {}

    /**
     * Time an inference pass. @p trace must have been produced with
     * brute-force data structuring (DsMethod::BruteKnn) — that is
     * the workload PointACC's Mapping Unit executes.
     */
    PointAccResult run(const ExecutionTrace &trace) const;

  private:
    SimConfig cfg;
};

} // namespace hgpcn

#endif // HGPCN_BASELINES_POINT_ACC_H
