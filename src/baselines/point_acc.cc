#include "baselines/point_acc.h"

#include "sim/bitonic_sorter.h"
#include "sim/fcu_dla.h"

namespace hgpcn
{

PointAccResult
PointAccSim::run(const ExecutionTrace &trace) const
{
    PointAccResult result;

    // Mapping Unit: per centroid, distances to the entire input
    // cloud (4 parallel distance units) followed by a full-range
    // bitonic top-K.
    const BitonicSorterSim sorter(cfg.fpga.bitonicLanes);
    std::uint64_t cycles = 0;
    for (const GatherOp &op : trace.gathers) {
        const std::uint64_t per_centroid_dist = (op.inputPoints + 3) / 4;
        const std::uint64_t per_centroid_sort =
            sorter.topKCycles(op.inputPoints, op.k ? op.k : 1);
        cycles +=
            op.centroids * (per_centroid_dist + per_centroid_sort);
        result.sortCandidates += op.centroids * op.inputPoints;
    }
    result.mappingSec = static_cast<double>(cycles) / cfg.fpga.acceleratorClockHz;

    // Feature computation on the shared 16x16 systolic model.
    const FcuSim fcu(cfg);
    result.fcSec = fcu.run(trace).totalSec();
    return result;
}

} // namespace hgpcn
