/**
 * @file
 * Mesorasi [6] behavioural model.
 *
 * Mesorasi performs data structuring on a mobile GPU and feature
 * computation with *delayed aggregation*: the per-point MLPs run on
 * the unique input points before neighborhood aggregation, removing
 * the (centroids*k)/points redundancy of grouped execution. DS and
 * FC are overlapped, but — as the paper stresses in Section VII-D —
 * "the inference speed is still largely limited by the latency of
 * the data structuring step" on the GPU.
 */

#ifndef HGPCN_BASELINES_MESORASI_H
#define HGPCN_BASELINES_MESORASI_H

#include "nn/layer_trace.h"
#include "sim/device_model.h"
#include "sim/sim_config.h"

namespace hgpcn
{

/** Latency result of a Mesorasi inference pass. */
struct MesorasiResult
{
    double dsSec = 0.0; //!< GPU data structuring
    double fcSec = 0.0; //!< delayed-aggregation feature computation

    /** @return end-to-end seconds with DS/FC overlap. */
    double
    totalSec() const
    {
        return dsSec > fcSec ? dsSec : fcSec;
    }
};

/** Mesorasi timing model. */
class MesorasiSim
{
  public:
    /**
     * @param config FPGA-fabric parameters for the FC side.
     * @param gpu Device running the DS step. Mesorasi pairs its NPU
     *            with a TX2-class mobile Pascal GPU — weaker than
     *            the Xavier NX baseline device.
     */
    explicit MesorasiSim(const SimConfig &config,
                         const DeviceSpec &gpu =
                             DeviceModel::tx2MobileGpu())
        : cfg(config), gpu_model(gpu)
    {}

    /**
     * Time an inference pass. @p trace must carry brute-force DS
     * workload (that is what the GPU executes).
     */
    MesorasiResult run(const ExecutionTrace &trace) const;

  private:
    SimConfig cfg;
    DeviceModel gpu_model;
};

} // namespace hgpcn

#endif // HGPCN_BASELINES_MESORASI_H
