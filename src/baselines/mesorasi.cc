#include "baselines/mesorasi.h"

#include <map>

#include "sim/fcu_dla.h"

namespace hgpcn
{

MesorasiResult
MesorasiSim::run(const ExecutionTrace &trace) const
{
    MesorasiResult result;

    // Data structuring runs on the paired GPU.
    result.dsSec = gpu_model.dsSec(trace);

    // Delayed aggregation: SA-layer MLPs execute once per unique
    // input point instead of once per grouped row. Scale each SA
    // GEMM's M from centroids*k down to the layer's input size; the
    // aggregation itself (a max reduction) is cheap and absorbed in
    // the systolic model's drain cycles.
    std::map<std::string, double> scale;
    for (const GatherOp &op : trace.gathers) {
        const double grouped = static_cast<double>(op.centroids) *
                               static_cast<double>(op.k);
        if (grouped > 0.0 && op.layer.rfind("sa", 0) == 0) {
            scale[op.layer] =
                static_cast<double>(op.inputPoints) / grouped;
        }
    }

    ExecutionTrace delayed;
    for (GemmOp op : trace.gemms) {
        // GEMM names are "<layer>.fcN"; match on the layer prefix.
        const auto dot = op.layer.find('.');
        const std::string layer = op.layer.substr(0, dot);
        const auto it = scale.find(layer);
        if (it != scale.end()) {
            const double scaled =
                static_cast<double>(op.m) * it->second;
            op.m = scaled < 1.0 ? 1
                                : static_cast<std::uint64_t>(scaled);
        }
        delayed.gemms.push_back(std::move(op));
    }

    const FcuSim fcu(cfg);
    result.fcSec = fcu.run(delayed).totalSec();
    return result;
}

} // namespace hgpcn
