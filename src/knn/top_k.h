/**
 * @file
 * Deterministic partial top-K selection for neighbor ranking.
 *
 * Every place the reproduction ranks scored neighbor candidates —
 * the brute-force gatherers, the FP-interpolation lookups, the
 * spatial-hash index and the VEG sort stage — selects the K
 * smallest (distance, index) pairs through this one helper.
 * Ordering is the lexicographic pair order: ties in distance break
 * toward the smaller point index, which makes every kernel's output
 * deterministic and lets the spatial-hash index be pinned
 * bit-identical against the brute oracle (tests/test_knn_index.cc).
 *
 * Kernel choice (measured, docs/PERFORMANCE.md): for the k << n of
 * every PCN layer (k = 3..64, n up to 16K), partial_sort's
 * heap-select — n comparisons against a k-element heap that almost
 * never updates — beats nth_element's quickselect (expected O(n)
 * but with full partition passes moving 8-byte pairs) by 3-9x.
 * Asymptotic complexity is not the constant; never replace this
 * with nth_element+sort without re-running the selection bench.
 */

#ifndef HGPCN_KNN_TOP_K_H
#define HGPCN_KNN_TOP_K_H

#include <algorithm>
#include <utility>
#include <vector>

#include "geometry/point_cloud.h"

namespace hgpcn
{

/** A neighbor candidate: squared distance + point index. */
using ScoredNeighbor = std::pair<float, PointIndex>;

/**
 * Reorder @p scored so its first @p k entries are the k smallest
 * candidates in ascending (distance, index) order. O(n log k) heap
 * select (see file comment for why this beats nth_element here);
 * the tail order is unspecified. @p k must not exceed scored.size().
 */
inline void
selectTopK(std::vector<ScoredNeighbor> &scored, std::size_t k)
{
    if (k == 0)
        return;
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min(k, scored.size()),
                      scored.end());
}

/**
 * @return the k-th smallest candidate of @p scored (1-based: k = 1
 * is the minimum) without fully ordering the winners. Expected
 * O(n). @p k must be in [1, scored.size()].
 */
inline ScoredNeighbor
kthSmallest(std::vector<ScoredNeighbor> &scored, std::size_t k)
{
    std::nth_element(scored.begin(), scored.begin() + (k - 1),
                     scored.end());
    return scored[k - 1];
}

} // namespace hgpcn

#endif // HGPCN_KNN_TOP_K_H
