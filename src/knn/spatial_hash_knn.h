/**
 * @file
 * Spatial-hash (uniform voxel-bucket) exact K-nearest-neighbor index.
 *
 * HgPCN's thesis is that data structuring — neighbor search over the
 * raw cloud — dominates E2E latency (Section II, Fig. 3), and the
 * DSU attacks it in hardware with voxel expansion. This is the same
 * idea applied to the *host* execution path: bucket the points of a
 * level into a uniform grid (counting sort, O(n)), then serve each
 * query by expanding Chebyshev rings of cells around the query's
 * cell until no unscanned ring can hold a closer neighbor — visiting
 * only nearby buckets instead of all n points.
 *
 * Exactness: a point in ring r is at least (r-1)·cell away from the
 * query, so once that lower bound (shrunk by a float-rounding slack)
 * exceeds the current k-th best squared distance the candidate set
 * provably contains the true top-k. Final selection orders
 * candidates by (distSq, index) — the same lexicographic tie-break
 * the brute kernels use — so results are bit-identical to BruteKnn,
 * which stays in the tree as the oracle (tests/test_knn_index.cc).
 *
 * Accounting: the index is a host-side optimization, not a modeled
 * accelerator. When it stands in for the brute kernel of a modeled
 * device (Mesorasi's GPU, PointACC's Mapping Unit, the CPU
 * baseline — DsMethod::BruteKnn), the device still performs its
 * data-independent full scan, so Accounting::ModeledBrute reports
 * the brute counters (n distances + n sort candidates per query) and
 * every cycle model sees an unchanged workload. Accounting::Native
 * reports what the index actually did — bench/analysis use.
 */

#ifndef HGPCN_KNN_SPATIAL_HASH_KNN_H
#define HGPCN_KNN_SPATIAL_HASH_KNN_H

#include <cstdint>
#include <span>
#include <vector>

#include "gather/gatherer.h"

namespace hgpcn
{

class FrameWorkspace;
struct PointDelta;

/** Exact KNN over a uniform voxel-bucket grid. */
class SpatialHashKnn
{
  public:
    struct Config
    {
        /** Target mean points per occupied cell volume; sets the
         * grid resolution. */
        double targetOccupancy = 2.0;

        /** Clouds at or below this size skip the grid and scan all
         * points — the grid cannot win on tiny inputs (the FP
         * coarse levels go down to 16 points). */
        std::size_t bruteThreshold = 128;

        /** Grid resolution cap (memory guard). */
        std::int32_t maxCellsPerAxis = 256;
    };

    /** Workload counters to report (see file comment). */
    enum class Accounting
    {
        Native,       //!< what the index actually computed
        ModeledBrute, //!< the brute kernel it replaces (full scan)
    };

    /**
     * Build the index over @p positions (borrowed; must outlive the
     * index). O(n) counting sort into CSR buckets. When @p ws is
     * given, bucket storage and query scratch come from the
     * workspace — zero heap traffic once warm; at most one
     * workspace-backed index may be alive per workspace.
     */
    explicit SpatialHashKnn(std::span<const Vec3> positions,
                            FrameWorkspace *ws = nullptr);

    SpatialHashKnn(std::span<const Vec3> positions,
                   const Config &config, FrameWorkspace *ws = nullptr);

    /** Empty index; call rebuild() before querying. Lets pooled
     * owners (core/temporal_preprocess.h) hold the index by value
     * and reuse its bucket storage across frames. */
    SpatialHashKnn() = default;

    /**
     * (Re)build the index in place — identical result to
     * constructing fresh, but owned storage keeps its capacity.
     */
    void rebuild(std::span<const Vec3> positions, const Config &config,
                 FrameWorkspace *ws = nullptr);

    /**
     * Rebuild incrementally from @p prev using the cross-frame
     * @p delta (geometry/point_delta.h): bucket counts are adjusted
     * by the insert/evict lists and only dirty cells re-bucket;
     * clean cells remap their previous order through the delta.
     * Output is bit-identical to rebuild() over @p positions.
     *
     * Engages only when both indices own their storage (no
     * workspace), the previous index ran the grid path, and the
     * freshly derived grid geometry is bit-identical to @p prev's.
     * @return false when it could not engage — the index is then
     * unchanged and the caller must rebuild() from scratch.
     */
    bool rebuildFrom(const SpatialHashKnn &prev,
                     std::span<const Vec3> positions,
                     const PointDelta &delta);

    /**
     * K nearest indexed points of every query position, each
     * query's neighbors in ascending (distSq, index) order — the
     * brute kernels' exact output. k is clamped to the cloud size
     * (result.k reports the effective k).
     */
    GatherResult gatherAt(std::span<const Vec3> queries, std::size_t k,
                          Accounting acc = Accounting::Native) const;

    /** gatherAt() anchored at member points (BruteKnn::gather
     * equivalent: the anchor itself is a distance-0 candidate). */
    GatherResult gather(std::span<const PointIndex> centrals,
                        std::size_t k,
                        Accounting acc = Accounting::Native) const;

    /** @return true when queries run over the grid (false: brute
     * fallback for tiny or degenerate clouds). */
    bool usesGrid() const { return grid_built; }

    /** @return grid cell edge length (0 when brute fallback). */
    float cellSize() const { return cell; }

    /** @return indexed point count. */
    std::size_t size() const { return pts.size(); }

  private:
    struct CellCoord
    {
        std::int32_t x, y, z;
    };

    CellCoord cellOf(const Vec3 &p) const;
    std::size_t cellId(std::int32_t x, std::int32_t y,
                       std::int32_t z) const;

    /** Append all candidates of the Chebyshev ring @p r around
     * @p center to @p scored; @return cells visited. */
    std::size_t scanRing(const CellCoord &center, std::int32_t r,
                         const Vec3 &q,
                         std::vector<std::pair<float, PointIndex>>
                             &scored) const;

    std::span<const Vec3> pts;
    Config cfg;
    FrameWorkspace *workspace;

    bool grid_built = false;
    Vec3 origin{};      //!< grid min corner
    float cell = 0.0f;  //!< cell edge length
    std::int32_t nx = 1, ny = 1, nz = 1;

    /** CSR buckets: either the workspace's buffers or these owned
     * ones (never both). */
    std::vector<std::uint32_t> own_start;
    std::vector<PointIndex> own_order;
    std::vector<std::uint32_t> own_cell_of;
    std::vector<std::uint32_t> *cell_start = nullptr; //!< size cells+1
    std::vector<PointIndex> *order = nullptr;         //!< size n
    std::vector<std::uint32_t> *cell_of = nullptr;    //!< size n

    mutable std::vector<std::pair<float, PointIndex>> own_scored;
    std::vector<std::pair<float, PointIndex>> *scored_buf = nullptr;

    /** rebuildFrom() scratch, reused across frames. */
    std::vector<std::uint8_t> dirty_cells;
    std::vector<std::pair<std::uint32_t, PointIndex>> cell_inserts;
};

} // namespace hgpcn

#endif // HGPCN_KNN_SPATIAL_HASH_KNN_H
