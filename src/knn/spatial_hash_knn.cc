#include "knn/spatial_hash_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/frame_workspace.h"
#include "knn/top_k.h"

namespace hgpcn
{

namespace
{

/**
 * Shrink factor applied to the ring lower bound before comparing it
 * to a float-computed squared distance. distSq() carries a few ULP
 * of rounding; the slack keeps the bound conservative (scan one ring
 * more rather than miss a boundary neighbor), preserving exactness.
 */
constexpr double kBoundSlack = 1.0 - 1e-4;

} // namespace

SpatialHashKnn::SpatialHashKnn(std::span<const Vec3> positions,
                               FrameWorkspace *ws)
    : SpatialHashKnn(positions, Config(), ws)
{
}

SpatialHashKnn::SpatialHashKnn(std::span<const Vec3> positions,
                               const Config &config, FrameWorkspace *ws)
    : pts(positions), cfg(config), workspace(ws)
{
    HGPCN_ASSERT(!pts.empty(), "empty cloud");
    const std::size_t n = pts.size();

    cell_start = &own_start;
    order = &own_order;
    scored_buf = &own_scored;
    if (workspace != nullptr) {
        cell_start = &workspace->knn.cellStart;
        order = &workspace->knn.order;
        scored_buf = &workspace->knn.scored;
    }

    if (n <= cfg.bruteThreshold)
        return; // query loop scans all points

    // --- Grid geometry: cubic cells sized for ~targetOccupancy
    // points per cell, per-axis counts following the bounds.
    Vec3 lo = pts[0];
    Vec3 hi = pts[0];
    for (const Vec3 &p : pts) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }
    const Vec3 extent = hi - lo;
    const float max_extent =
        std::max(extent.x, std::max(extent.y, extent.z));
    if (!(max_extent > 0.0f))
        return; // all points coincide: one implicit cell, scan all

    const double want_cells =
        static_cast<double>(n) / std::max(cfg.targetOccupancy, 1e-6);
    std::int32_t axis_cells =
        static_cast<std::int32_t>(std::lround(std::cbrt(want_cells)));
    axis_cells = std::clamp(axis_cells, std::int32_t{1},
                            cfg.maxCellsPerAxis);
    origin = lo;
    cell = max_extent / static_cast<float>(axis_cells);

    const auto cells_for = [&](float e) {
        const std::int32_t c = static_cast<std::int32_t>(
            std::floor(e / cell)) + 1;
        return std::clamp(c, std::int32_t{1}, axis_cells + 1);
    };
    nx = cells_for(extent.x);
    ny = cells_for(extent.y);
    nz = cells_for(extent.z);

    // --- Counting sort into CSR buckets.
    const std::size_t cells = static_cast<std::size_t>(nx) * ny * nz;
    std::vector<std::uint32_t> local_cell_of;
    std::vector<std::uint32_t> *cell_of = &local_cell_of;
    if (workspace != nullptr)
        cell_of = &workspace->knn.pointCell;

    if (workspace != nullptr) {
        workspace->ensure(*cell_start, cells + 1);
        workspace->ensure(*order, n);
        workspace->ensure(*cell_of, n);
    }
    cell_start->assign(cells + 1, 0);
    order->resize(n);
    cell_of->resize(n);

    std::vector<std::uint32_t> &cs = *cell_start;
    for (std::size_t i = 0; i < n; ++i) {
        const CellCoord c = cellOf(pts[i]);
        const std::uint32_t id = static_cast<std::uint32_t>(
            cellId(c.x, c.y, c.z));
        (*cell_of)[i] = id;
        ++cs[id + 1];
    }
    for (std::size_t c = 0; c < cells; ++c)
        cs[c + 1] += cs[c];
    // Scatter through cs[id] (start offsets), which turns each
    // cs[id] into its bucket's end; shift right afterwards to
    // restore the starts — no cursor array, no extra allocation.
    for (std::size_t i = 0; i < n; ++i)
        (*order)[cs[(*cell_of)[i]]++] = static_cast<PointIndex>(i);
    for (std::size_t c = cells; c > 0; --c)
        cs[c] = cs[c - 1];
    cs[0] = 0;

    grid_built = true;
}

SpatialHashKnn::CellCoord
SpatialHashKnn::cellOf(const Vec3 &p) const
{
    const auto coord = [this](float v, float o, std::int32_t limit) {
        const std::int32_t c =
            static_cast<std::int32_t>(std::floor((v - o) / cell));
        return std::clamp(c, std::int32_t{0}, limit - 1);
    };
    return {coord(p.x, origin.x, nx), coord(p.y, origin.y, ny),
            coord(p.z, origin.z, nz)};
}

std::size_t
SpatialHashKnn::cellId(std::int32_t x, std::int32_t y,
                       std::int32_t z) const
{
    return (static_cast<std::size_t>(z) * ny + y) * nx + x;
}

std::size_t
SpatialHashKnn::scanRing(
    const CellCoord &center, std::int32_t r, const Vec3 &q,
    std::vector<std::pair<float, PointIndex>> &scored) const
{
    std::size_t visited = 0;
    const auto scan_cell = [&](std::int32_t x, std::int32_t y,
                               std::int32_t z) {
        const std::size_t id = cellId(x, y, z);
        const std::uint32_t first = (*cell_start)[id];
        const std::uint32_t last = (*cell_start)[id + 1];
        for (std::uint32_t s = first; s < last; ++s) {
            const PointIndex p = (*order)[s];
            scored.emplace_back(pts[p].distSq(q), p);
        }
        ++visited;
    };

    const std::int32_t x0 = std::max(center.x - r, 0);
    const std::int32_t x1 = std::min(center.x + r, nx - 1);
    const std::int32_t y0 = std::max(center.y - r, 0);
    const std::int32_t y1 = std::min(center.y + r, ny - 1);
    const std::int32_t z0 = std::max(center.z - r, 0);
    const std::int32_t z1 = std::min(center.z + r, nz - 1);
    if (r == 0) {
        scan_cell(center.x, center.y, center.z);
        return visited;
    }
    for (std::int32_t z = z0; z <= z1; ++z) {
        const bool z_face =
            z == center.z - r || z == center.z + r;
        for (std::int32_t y = y0; y <= y1; ++y) {
            const bool y_face =
                y == center.y - r || y == center.y + r;
            if (z_face || y_face) {
                for (std::int32_t x = x0; x <= x1; ++x)
                    scan_cell(x, y, z);
            } else {
                // interior row: only the two x faces are on-shell
                if (center.x - r >= 0)
                    scan_cell(center.x - r, y, z);
                if (center.x + r <= nx - 1)
                    scan_cell(center.x + r, y, z);
            }
        }
    }
    return visited;
}

GatherResult
SpatialHashKnn::gatherAt(std::span<const Vec3> queries, std::size_t k,
                         Accounting acc) const
{
    const std::size_t n = pts.size();
    HGPCN_ASSERT(k >= 1, "k=", k);
    const std::size_t k_eff = std::min(k, n);

    GatherResult result;
    result.k = k_eff;
    result.neighbors.reserve(queries.size() * k_eff);

    std::uint64_t dist_computes = 0;
    std::uint64_t sort_candidates = 0;
    std::uint64_t cells_visited = 0;

    std::vector<std::pair<float, PointIndex>> &scored = *scored_buf;
    if (workspace != nullptr)
        workspace->ensure(scored, n);

    for (const Vec3 &q : queries) {
        scored.clear();
        if (!grid_built) {
            for (std::size_t i = 0; i < n; ++i) {
                scored.emplace_back(
                    pts[i].distSq(q), static_cast<PointIndex>(i));
            }
        } else {
            const CellCoord c0 = cellOf(q);
            // Rings needed to cover the whole grid from c0.
            const std::int32_t max_ring = std::max(
                {c0.x, nx - 1 - c0.x, c0.y, ny - 1 - c0.y, c0.z,
                 nz - 1 - c0.z});
            double kth = std::numeric_limits<double>::infinity();
            for (std::int32_t r = 0; r <= max_ring; ++r) {
                const std::size_t before = scored.size();
                cells_visited += scanRing(c0, r, q, scored);
                if (scored.size() >= k_eff) {
                    if (scored.size() != before) {
                        kth = static_cast<double>(
                            kthSmallest(scored, k_eff).first);
                    }
                    // Min distance of any unscanned (ring r+1)
                    // point is r*cell; stop once that provably
                    // exceeds the k-th best (slack: see above).
                    const double bound =
                        static_cast<double>(r) *
                        static_cast<double>(cell);
                    if (bound * bound * kBoundSlack > kth)
                        break;
                }
            }
        }
        dist_computes += scored.size();
        sort_candidates += scored.size();
        selectTopK(scored, k_eff);
        for (std::size_t j = 0; j < k_eff; ++j)
            result.neighbors.push_back(scored[j].second);
    }

    if (acc == Accounting::ModeledBrute) {
        // The modeled device's kernel is a data-independent full
        // scan per query: report its workload, not the index's, so
        // every cycle model sees an unchanged trace.
        result.stats.set("gather.distance_computations",
                         queries.size() * n);
        result.stats.set("gather.sort_candidates",
                         queries.size() * n);
    } else {
        result.stats.set("gather.distance_computations",
                         dist_computes);
        result.stats.set("gather.sort_candidates", sort_candidates);
        result.stats.set("gather.cells_visited", cells_visited);
    }
    return result;
}

GatherResult
SpatialHashKnn::gather(std::span<const PointIndex> centrals,
                       std::size_t k, Accounting acc) const
{
    std::vector<Vec3> anchors;
    std::vector<Vec3> *buf = &anchors;
    if (workspace != nullptr)
        buf = &workspace->positions(centrals.size());
    else
        anchors.resize(centrals.size());
    for (std::size_t i = 0; i < centrals.size(); ++i)
        (*buf)[i] = pts[centrals[i]];
    return gatherAt(*buf, k, acc);
}

} // namespace hgpcn
