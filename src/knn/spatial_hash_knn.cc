#include "knn/spatial_hash_knn.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "core/frame_workspace.h"
#include "geometry/point_delta.h"
#include "knn/top_k.h"

namespace hgpcn
{

namespace
{

/**
 * Shrink factor applied to the ring lower bound before comparing it
 * to a float-computed squared distance. distSq() carries a few ULP
 * of rounding; the slack keeps the bound conservative (scan one ring
 * more rather than miss a boundary neighbor), preserving exactness.
 */
constexpr double kBoundSlack = 1.0 - 1e-4;

} // namespace

SpatialHashKnn::SpatialHashKnn(std::span<const Vec3> positions,
                               FrameWorkspace *ws)
    : SpatialHashKnn(positions, Config(), ws)
{
}

SpatialHashKnn::SpatialHashKnn(std::span<const Vec3> positions,
                               const Config &config, FrameWorkspace *ws)
{
    rebuild(positions, config, ws);
}

void
SpatialHashKnn::rebuild(std::span<const Vec3> positions,
                        const Config &config, FrameWorkspace *ws)
{
    pts = positions;
    cfg = config;
    workspace = ws;
    grid_built = false;
    origin = Vec3{};
    cell = 0.0f;
    nx = ny = nz = 1;

    HGPCN_ASSERT(!pts.empty(), "empty cloud");
    const std::size_t n = pts.size();

    cell_start = &own_start;
    order = &own_order;
    cell_of = &own_cell_of;
    scored_buf = &own_scored;
    if (workspace != nullptr) {
        cell_start = &workspace->knn.cellStart;
        order = &workspace->knn.order;
        cell_of = &workspace->knn.pointCell;
        scored_buf = &workspace->knn.scored;
    }

    if (n <= cfg.bruteThreshold)
        return; // query loop scans all points

    // --- Grid geometry: cubic cells sized for ~targetOccupancy
    // points per cell, per-axis counts following the bounds.
    Vec3 lo = pts[0];
    Vec3 hi = pts[0];
    for (const Vec3 &p : pts) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }
    const Vec3 extent = hi - lo;
    const float max_extent =
        std::max(extent.x, std::max(extent.y, extent.z));
    if (!(max_extent > 0.0f))
        return; // all points coincide: one implicit cell, scan all

    const double want_cells =
        static_cast<double>(n) / std::max(cfg.targetOccupancy, 1e-6);
    std::int32_t axis_cells =
        static_cast<std::int32_t>(std::lround(std::cbrt(want_cells)));
    axis_cells = std::clamp(axis_cells, std::int32_t{1},
                            cfg.maxCellsPerAxis);
    origin = lo;
    cell = max_extent / static_cast<float>(axis_cells);

    const auto cells_for = [&](float e) {
        const std::int32_t c = static_cast<std::int32_t>(
            std::floor(e / cell)) + 1;
        return std::clamp(c, std::int32_t{1}, axis_cells + 1);
    };
    nx = cells_for(extent.x);
    ny = cells_for(extent.y);
    nz = cells_for(extent.z);

    // --- Counting sort into CSR buckets.
    const std::size_t cells = static_cast<std::size_t>(nx) * ny * nz;
    if (workspace != nullptr) {
        workspace->ensure(*cell_start, cells + 1);
        workspace->ensure(*order, n);
        workspace->ensure(*cell_of, n);
    }
    cell_start->assign(cells + 1, 0);
    order->resize(n);
    cell_of->resize(n);

    std::vector<std::uint32_t> &cs = *cell_start;
    for (std::size_t i = 0; i < n; ++i) {
        const CellCoord c = cellOf(pts[i]);
        const std::uint32_t id = static_cast<std::uint32_t>(
            cellId(c.x, c.y, c.z));
        (*cell_of)[i] = id;
        ++cs[id + 1];
    }
    for (std::size_t c = 0; c < cells; ++c)
        cs[c + 1] += cs[c];
    // Scatter through cs[id] (start offsets), which turns each
    // cs[id] into its bucket's end; shift right afterwards to
    // restore the starts — no cursor array, no extra allocation.
    for (std::size_t i = 0; i < n; ++i)
        (*order)[cs[(*cell_of)[i]]++] = static_cast<PointIndex>(i);
    for (std::size_t c = cells; c > 0; --c)
        cs[c] = cs[c - 1];
    cs[0] = 0;

    grid_built = true;
}

bool
SpatialHashKnn::rebuildFrom(const SpatialHashKnn &prev,
                            std::span<const Vec3> positions,
                            const PointDelta &delta)
{
    // Incremental fill needs the previous bucket layout to be owned
    // (workspace buffers are shared and may have been overwritten)
    // and the grid path to have run on both sides.
    if (prev.workspace != nullptr || !prev.grid_built)
        return false;
    const std::size_t n = positions.size();
    const std::size_t n_old = prev.pts.size();
    if (n == 0 || prev.own_cell_of.size() != n_old ||
        delta.newFromOld.size() != n_old)
        return false;
    if (n <= prev.cfg.bruteThreshold)
        return false;

    // Derive the grid geometry exactly as rebuild() would and demand
    // bit-identity with the previous frame's: only then does every
    // retained point provably keep its cell id.
    Vec3 lo = positions[0];
    Vec3 hi = positions[0];
    for (const Vec3 &p : positions) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }
    const Vec3 extent = hi - lo;
    const float max_extent =
        std::max(extent.x, std::max(extent.y, extent.z));
    if (!(max_extent > 0.0f))
        return false;

    const double want_cells = static_cast<double>(n) /
                              std::max(prev.cfg.targetOccupancy, 1e-6);
    std::int32_t axis_cells =
        static_cast<std::int32_t>(std::lround(std::cbrt(want_cells)));
    axis_cells = std::clamp(axis_cells, std::int32_t{1},
                            prev.cfg.maxCellsPerAxis);
    const float new_cell =
        max_extent / static_cast<float>(axis_cells);
    const auto cells_for = [&](float e) {
        const std::int32_t c = static_cast<std::int32_t>(
            std::floor(e / new_cell)) + 1;
        return std::clamp(c, std::int32_t{1}, axis_cells + 1);
    };
    if (std::memcmp(&lo.x, &prev.origin.x, sizeof(float)) != 0 ||
        std::memcmp(&lo.y, &prev.origin.y, sizeof(float)) != 0 ||
        std::memcmp(&lo.z, &prev.origin.z, sizeof(float)) != 0 ||
        std::memcmp(&new_cell, &prev.cell, sizeof(float)) != 0 ||
        cells_for(extent.x) != prev.nx ||
        cells_for(extent.y) != prev.ny ||
        cells_for(extent.z) != prev.nz)
        return false;

    pts = positions;
    cfg = prev.cfg;
    workspace = nullptr;
    origin = prev.origin;
    cell = prev.cell;
    nx = prev.nx;
    ny = prev.ny;
    nz = prev.nz;
    cell_start = &own_start;
    order = &own_order;
    cell_of = &own_cell_of;
    scored_buf = &own_scored;

    const std::size_t cells = static_cast<std::size_t>(nx) * ny * nz;
    std::vector<std::uint32_t> &cs = own_start;
    cs.resize(cells + 1);
    own_order.resize(n);
    own_cell_of.resize(n);
    dirty_cells.assign(cells, 0);

    // Bucket counts: previous counts adjusted by the delta.
    cs[0] = 0;
    for (std::size_t c = 0; c < cells; ++c)
        cs[c + 1] = prev.own_start[c + 1] - prev.own_start[c];
    for (const PointIndex e : delta.evictedOld) {
        const std::uint32_t id = prev.own_cell_of[e];
        --cs[id + 1];
        dirty_cells[id] = 1;
    }
    cell_inserts.clear();
    for (const PointIndex i : delta.insertedNew) {
        const CellCoord c = cellOf(positions[i]);
        const std::uint32_t id =
            static_cast<std::uint32_t>(cellId(c.x, c.y, c.z));
        ++cs[id + 1];
        dirty_cells[id] = 1;
        cell_inserts.emplace_back(id, i);
    }
    // insertedNew ascends, so sorting by cell keeps slots ascending
    // within each cell — the stable counting-sort order.
    std::sort(cell_inserts.begin(), cell_inserts.end());
    for (std::size_t c = 0; c < cells; ++c)
        cs[c + 1] += cs[c];
    HGPCN_ASSERT(cs[cells] == n, "incremental bucket counts drifted");

    // Fill buckets in ascending cell order. Clean cells remap their
    // previous order through newFromOld (monotone, so the remapped
    // run is already in ascending new-index order — exactly what the
    // stable counting sort would emit). Dirty cells merge the
    // remapped survivors with their sorted insertions.
    std::size_t ins = 0;
    for (std::size_t id = 0; id < cells; ++id) {
        std::uint32_t w = cs[id];
        const std::uint32_t pf = prev.own_start[id];
        const std::uint32_t pl = prev.own_start[id + 1];
        if (!dirty_cells[id]) {
            for (std::uint32_t s = pf; s < pl; ++s) {
                const PointIndex np =
                    delta.newFromOld[prev.own_order[s]];
                own_order[w++] = np;
                own_cell_of[np] =
                    static_cast<std::uint32_t>(id);
            }
            continue;
        }
        std::uint32_t s = pf;
        PointIndex np = kNoPoint;
        while (s < pl &&
               (np = delta.newFromOld[prev.own_order[s]]) ==
                   kNoPoint)
            ++s;
        while (s < pl || (ins < cell_inserts.size() &&
                          cell_inserts[ins].first == id)) {
            const bool take_ins =
                s >= pl ||
                (ins < cell_inserts.size() &&
                 cell_inserts[ins].first == id &&
                 cell_inserts[ins].second < np);
            PointIndex take;
            if (take_ins) {
                take = cell_inserts[ins++].second;
            } else {
                take = np;
                ++s;
                while (s < pl &&
                       (np = delta.newFromOld[prev.own_order[s]]) ==
                           kNoPoint)
                    ++s;
            }
            own_order[w++] = take;
            own_cell_of[take] = static_cast<std::uint32_t>(id);
        }
        HGPCN_ASSERT(w == cs[id + 1],
                     "incremental bucket fill drifted at cell ", id);
    }
    HGPCN_ASSERT(ins == cell_inserts.size(),
                 "incremental fill dropped insertions");

    grid_built = true;
    return true;
}

SpatialHashKnn::CellCoord
SpatialHashKnn::cellOf(const Vec3 &p) const
{
    const auto coord = [this](float v, float o, std::int32_t limit) {
        const std::int32_t c =
            static_cast<std::int32_t>(std::floor((v - o) / cell));
        return std::clamp(c, std::int32_t{0}, limit - 1);
    };
    return {coord(p.x, origin.x, nx), coord(p.y, origin.y, ny),
            coord(p.z, origin.z, nz)};
}

std::size_t
SpatialHashKnn::cellId(std::int32_t x, std::int32_t y,
                       std::int32_t z) const
{
    return (static_cast<std::size_t>(z) * ny + y) * nx + x;
}

std::size_t
SpatialHashKnn::scanRing(
    const CellCoord &center, std::int32_t r, const Vec3 &q,
    std::vector<std::pair<float, PointIndex>> &scored) const
{
    std::size_t visited = 0;
    const auto scan_cell = [&](std::int32_t x, std::int32_t y,
                               std::int32_t z) {
        const std::size_t id = cellId(x, y, z);
        const std::uint32_t first = (*cell_start)[id];
        const std::uint32_t last = (*cell_start)[id + 1];
        for (std::uint32_t s = first; s < last; ++s) {
            const PointIndex p = (*order)[s];
            scored.emplace_back(pts[p].distSq(q), p);
        }
        ++visited;
    };

    const std::int32_t x0 = std::max(center.x - r, 0);
    const std::int32_t x1 = std::min(center.x + r, nx - 1);
    const std::int32_t y0 = std::max(center.y - r, 0);
    const std::int32_t y1 = std::min(center.y + r, ny - 1);
    const std::int32_t z0 = std::max(center.z - r, 0);
    const std::int32_t z1 = std::min(center.z + r, nz - 1);
    if (r == 0) {
        scan_cell(center.x, center.y, center.z);
        return visited;
    }
    for (std::int32_t z = z0; z <= z1; ++z) {
        const bool z_face =
            z == center.z - r || z == center.z + r;
        for (std::int32_t y = y0; y <= y1; ++y) {
            const bool y_face =
                y == center.y - r || y == center.y + r;
            if (z_face || y_face) {
                for (std::int32_t x = x0; x <= x1; ++x)
                    scan_cell(x, y, z);
            } else {
                // interior row: only the two x faces are on-shell
                if (center.x - r >= 0)
                    scan_cell(center.x - r, y, z);
                if (center.x + r <= nx - 1)
                    scan_cell(center.x + r, y, z);
            }
        }
    }
    return visited;
}

GatherResult
SpatialHashKnn::gatherAt(std::span<const Vec3> queries, std::size_t k,
                         Accounting acc) const
{
    const std::size_t n = pts.size();
    HGPCN_ASSERT(k >= 1, "k=", k);
    const std::size_t k_eff = std::min(k, n);

    GatherResult result;
    result.k = k_eff;
    result.neighbors.reserve(queries.size() * k_eff);

    std::uint64_t dist_computes = 0;
    std::uint64_t sort_candidates = 0;
    std::uint64_t cells_visited = 0;

    std::vector<std::pair<float, PointIndex>> &scored = *scored_buf;
    if (workspace != nullptr)
        workspace->ensure(scored, n);

    for (const Vec3 &q : queries) {
        scored.clear();
        if (!grid_built) {
            for (std::size_t i = 0; i < n; ++i) {
                scored.emplace_back(
                    pts[i].distSq(q), static_cast<PointIndex>(i));
            }
        } else {
            const CellCoord c0 = cellOf(q);
            // Rings needed to cover the whole grid from c0.
            const std::int32_t max_ring = std::max(
                {c0.x, nx - 1 - c0.x, c0.y, ny - 1 - c0.y, c0.z,
                 nz - 1 - c0.z});
            double kth = std::numeric_limits<double>::infinity();
            for (std::int32_t r = 0; r <= max_ring; ++r) {
                const std::size_t before = scored.size();
                cells_visited += scanRing(c0, r, q, scored);
                if (scored.size() >= k_eff) {
                    if (scored.size() != before) {
                        kth = static_cast<double>(
                            kthSmallest(scored, k_eff).first);
                    }
                    // Min distance of any unscanned (ring r+1)
                    // point is r*cell; stop once that provably
                    // exceeds the k-th best (slack: see above).
                    const double bound =
                        static_cast<double>(r) *
                        static_cast<double>(cell);
                    if (bound * bound * kBoundSlack > kth)
                        break;
                }
            }
        }
        dist_computes += scored.size();
        sort_candidates += scored.size();
        selectTopK(scored, k_eff);
        for (std::size_t j = 0; j < k_eff; ++j)
            result.neighbors.push_back(scored[j].second);
    }

    if (acc == Accounting::ModeledBrute) {
        // The modeled device's kernel is a data-independent full
        // scan per query: report its workload, not the index's, so
        // every cycle model sees an unchanged trace.
        result.stats.set("gather.distance_computations",
                         queries.size() * n);
        result.stats.set("gather.sort_candidates",
                         queries.size() * n);
    } else {
        result.stats.set("gather.distance_computations",
                         dist_computes);
        result.stats.set("gather.sort_candidates", sort_candidates);
        result.stats.set("gather.cells_visited", cells_visited);
    }
    return result;
}

GatherResult
SpatialHashKnn::gather(std::span<const PointIndex> centrals,
                       std::size_t k, Accounting acc) const
{
    std::vector<Vec3> anchors;
    std::vector<Vec3> *buf = &anchors;
    if (workspace != nullptr)
        buf = &workspace->positions(centrals.size());
    else
        anchors.resize(centrals.size());
    for (std::size_t i = 0; i < centrals.size(); ++i)
        (*buf)[i] = pts[centrals[i]];
    return gatherAt(*buf, k, acc);
}

} // namespace hgpcn
