#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace hgpcn
{

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    HGPCN_ASSERT(!bounds_.empty(),
                 "histogram needs at least one bucket bound");
    HGPCN_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must ascend");
}

void
Histogram::observe(double x)
{
    std::size_t b = 0;
    while (b < bounds_.size() && x > bounds_[b])
        ++b;
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.add(x);
    count_.fetch_add(1, std::memory_order_relaxed);
    // min_/max_ start at +/-infinity, so the CAS loops are correct
    // for the first observation too (no seeding race).
    double cur = min_.load(std::memory_order_relaxed);
    while (x < cur && !min_.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (x > cur && !max_.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.value();
}

double
Histogram::min() const
{
    return count() == 0 ? 0.0
                        : min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return count() == 0 ? 0.0
                        : max_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    HGPCN_ASSERT(i < counts_.size(), "bucket index out of range");
    return counts_[i].load(std::memory_order_relaxed);
}

namespace
{

/** Shared nearest-rank walk over bucket counts (see stats.h's
 *  percentileNearestRank: rank = ceil(q*n), 1-based, clamped). */
double
bucketPercentile(const std::vector<double> &bounds,
                 const std::vector<std::uint64_t> &buckets,
                 std::uint64_t n, double max_seen, double q)
{
    if (n == 0)
        return 0.0;
    const double rank_d = std::ceil(q * static_cast<double>(n));
    const std::uint64_t rank =
        rank_d < 1.0
            ? 1
            : std::min(static_cast<std::uint64_t>(rank_d), n);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return b < bounds.size() ? bounds[b] : max_seen;
    }
    return max_seen;
}

} // namespace

double
Histogram::percentile(double q) const
{
    std::vector<std::uint64_t> buckets(counts_.size());
    for (std::size_t b = 0; b < counts_.size(); ++b)
        buckets[b] = counts_[b].load(std::memory_order_relaxed);
    return bucketPercentile(bounds_, buckets, count(), max(), q);
}

double
MetricValue::percentile(double q) const
{
    HGPCN_ASSERT(kind == Kind::Histogram,
                 "percentile() is histogram-only");
    return bucketPercentile(bounds, buckets, count, max, q);
}

const MetricValue *
MetricsSnapshot::find(const std::string &name) const
{
    auto it = values.find(name);
    return it == values.end() ? nullptr : &it->second;
}

std::uint64_t
MetricsSnapshot::countOf(const std::string &name) const
{
    const MetricValue *v = find(name);
    return v ? v->count : 0;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[name, theirs] : other.values) {
        auto it = values.find(name);
        if (it == values.end()) {
            values.emplace(name, theirs);
            continue;
        }
        MetricValue &mine = it->second;
        HGPCN_ASSERT(mine.kind == theirs.kind,
                     "metric ", name, " merged across kinds");
        switch (mine.kind) {
          case MetricValue::Kind::Counter:
            mine.count += theirs.count;
            break;
          case MetricValue::Kind::Gauge:
            mine.value += theirs.value;
            break;
          case MetricValue::Kind::Histogram:
            HGPCN_ASSERT(mine.bounds == theirs.bounds,
                         "metric ", name,
                         " merged across bucket layouts");
            for (std::size_t b = 0; b < mine.buckets.size(); ++b)
                mine.buckets[b] += theirs.buckets[b];
            if (theirs.count > 0) {
                if (mine.count == 0) {
                    mine.min = theirs.min;
                    mine.max = theirs.max;
                } else {
                    mine.min = std::min(mine.min, theirs.min);
                    mine.max = std::max(mine.max, theirs.max);
                }
            }
            mine.count += theirs.count;
            mine.value += theirs.value;
            break;
        }
    }
}

std::string
MetricsSnapshot::toString() const
{
    std::ostringstream oss;
    for (const auto &[name, v] : values) {
        oss << name << " ";
        switch (v.kind) {
          case MetricValue::Kind::Counter:
            oss << v.count;
            break;
          case MetricValue::Kind::Gauge:
            oss << v.value;
            break;
          case MetricValue::Kind::Histogram:
            oss << "n=" << v.count << " sum=" << v.value
                << " min=" << v.min << " max=" << v.max
                << " p50=" << v.percentile(0.50)
                << " p99=" << v.percentile(0.99);
            break;
        }
        oss << "\n";
    }
    return oss.str();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(name, std::make_unique<Histogram>(
                                    std::move(bounds)))
                 .first;
    } else {
        HGPCN_ASSERT(it->second->bounds() == bounds,
                     "histogram ", name,
                     " re-registered with different bounds");
    }
    return *it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot out;
    for (const auto &[name, c] : counters_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Counter;
        v.count = c->value();
        out.values.emplace(name, std::move(v));
    }
    for (const auto &[name, g] : gauges_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Gauge;
        v.value = g->value();
        out.values.emplace(name, std::move(v));
    }
    for (const auto &[name, h] : histograms_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Histogram;
        v.count = h->count();
        v.value = h->sum();
        v.min = h->min();
        v.max = h->max();
        v.bounds = h->bounds();
        v.buckets.resize(v.bounds.size() + 1);
        for (std::size_t b = 0; b < v.buckets.size(); ++b)
            v.buckets[b] = h->bucketCount(b);
        out.values.emplace(name, std::move(v));
    }
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace hgpcn
