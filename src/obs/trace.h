/**
 * @file
 * Lock-light tracing: spans, instants, and counter samples on both
 * clocks (host wall time and the deterministic virtual timeline).
 *
 * Design contract (docs/OBSERVABILITY.md):
 *  - Recording is per-thread-buffered. Each thread owns a buffer
 *    guarded by its own mutex, so the hot path never contends with
 *    other recording threads; cross-thread locking happens only at
 *    snapshot()/clear() time.
 *  - The enabled() check is one relaxed atomic load. Tracing is off
 *    by default and all instrumentation sites must bail before
 *    building strings or reading clocks when it is off.
 *  - Virtual-clock events carry deterministic payloads only (modeled
 *    seconds, frame/sensor/shard/batch ids), and snapshot() returns
 *    events in a canonical order independent of thread interleaving,
 *    so an exported virtual-time trace is byte-identical across runs
 *    of the same configuration — the same discipline as the BENCH
 *    records.
 *  - Compile-time removal: building with -DHGPCN_TRACING_DISABLED
 *    (CMake option HGPCN_DISABLE_TRACING) turns the HGPCN_TRACE_*
 *    macros into no-ops so instrumented hot paths carry zero code.
 */

#ifndef HGPCN_OBS_TRACE_H
#define HGPCN_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hgpcn
{

/** Which clock a trace event's timestamps live on. */
enum class TraceClock
{
    Wall,    //!< host steady clock, seconds since Tracer epoch
    Virtual, //!< deterministic virtual timeline, modeled seconds
};

/** Event shape, mapped 1:1 onto Chrome trace_event phases. */
enum class TracePhase
{
    Complete, //!< span with a duration ("X")
    Instant,  //!< point event ("i")
    Counter,  //!< sampled value ("C")
};

/** Optional entity ids attached to an event; -1 means absent. */
struct TraceIds
{
    std::int64_t frame = -1;
    std::int64_t sensor = -1;
    std::int64_t shard = -1;
    std::int64_t batch = -1;
};

/** One recorded event. POD-ish; copied into per-thread buffers. */
struct TraceEvent
{
    TracePhase phase = TracePhase::Instant;
    TraceClock clock = TraceClock::Wall;
    double tsSec = 0.0;  //!< start (Complete) or sample time
    double durSec = 0.0; //!< Complete spans only
    double value = 0.0;  //!< Counter samples only
    std::string name;    //!< "<category>:<what>", e.g. "exec:inference"
    std::string cat;     //!< coarse grouping (resource, "stall", ...)
    std::string track;   //!< exported as a named thread/row
    TraceIds ids;
};

/**
 * The tracer: a set of per-thread event buffers behind one
 * enabled flag. Instantiable for tests; production code shares
 * Tracer::global().
 */
class Tracer
{
  public:
    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Process-wide tracer used by the instrumented stack. */
    static Tracer &global();

    /** Turn recording on or off (off by default). */
    void setEnabled(bool on);

    /** @return true when events are being recorded. */
    bool
    enabled() const
    {
        return on_.load(std::memory_order_relaxed);
    }

    /** Record one event (no-op when disabled). */
    void record(TraceEvent ev);

    /** Record a Complete span. */
    void span(TraceClock clock, double tsSec, double durSec,
              std::string name, std::string cat, std::string track,
              TraceIds ids = {});

    /** Record an Instant event. */
    void instant(TraceClock clock, double tsSec, std::string name,
                 std::string cat, std::string track,
                 TraceIds ids = {});

    /** Record a Counter sample. */
    void counter(TraceClock clock, double tsSec, std::string name,
                 std::string track, double value);

    /**
     * Seconds of host wall time since construction (or the last
     * clear()). Wall-clock spans use this as their time base.
     */
    double wallNowSec() const;

    /**
     * All recorded events merged across threads in a canonical
     * order that depends only on event payloads (never on thread
     * interleaving): sort by (clock, tsSec, track, name, ids,
     * phase, durSec, value). Virtual-clock payloads are
     * deterministic, so the virtual prefix of a snapshot is
     * byte-stable across runs.
     */
    std::vector<TraceEvent> snapshot() const;

    /** Drop all recorded events and restart the wall epoch. */
    void clear();

    /** Total number of buffered events (all threads). */
    std::size_t eventCount() const;

  private:
    struct ThreadBuffer
    {
        std::mutex mu;
        std::vector<TraceEvent> events;
    };

    /** This thread's buffer, created on first use. */
    ThreadBuffer &buffer();

    const std::uint64_t id_; //!< distinguishes tracer instances in
                             //!< the thread-local buffer cache
    std::atomic<bool> on_{false};
    mutable std::mutex mu_;  //!< guards buffers_ (registration and
                             //!< snapshot/clear), not the hot path
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::atomic<std::int64_t> epochNs_; //!< steady_clock nanos; atomic
                                        //!< so clear() cannot race
                                        //!< wallNowSec() readers

};

/**
 * RAII wall-clock span: begin() stamps the start, the destructor
 * records a Complete event. Default-constructed (never begun) spans
 * do nothing, so the HGPCN_TRACE_WALL_SPAN macro can skip argument
 * evaluation entirely when the tracer is off.
 */
class TraceSpan
{
  public:
    TraceSpan() = default;

    TraceSpan(Tracer &tracer, std::string name, std::string cat,
              std::string track, TraceIds ids = {})
    {
        if (tracer.enabled())
            begin(tracer, std::move(name), std::move(cat),
                  std::move(track), ids);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Arm the span (call at most once, while tracing is on). */
    void
    begin(Tracer &tracer, std::string name, std::string cat,
          std::string track, TraceIds ids = {})
    {
        tracer_ = &tracer;
        name_ = std::move(name);
        cat_ = std::move(cat);
        track_ = std::move(track);
        ids_ = ids;
        startSec_ = tracer.wallNowSec();
    }

    ~TraceSpan()
    {
        if (!tracer_)
            return;
        const double end = tracer_->wallNowSec();
        tracer_->span(TraceClock::Wall, startSec_, end - startSec_,
                      std::move(name_), std::move(cat_),
                      std::move(track_), ids_);
    }

  private:
    Tracer *tracer_ = nullptr;
    double startSec_ = 0.0;
    std::string name_;
    std::string cat_;
    std::string track_;
    TraceIds ids_;
};

/*
 * Instrumentation macros: compile away entirely under
 * HGPCN_TRACING_DISABLED. Argument expressions are not evaluated
 * when compiled out.
 */
#ifdef HGPCN_TRACING_DISABLED

#define HGPCN_TRACE_ENABLED() false
#define HGPCN_TRACE_WALL_SPAN(varname, ...) ((void)0)
#define HGPCN_TRACE_EVENT(call) ((void)0)

#else

/** @return whether the global tracer is recording. */
#define HGPCN_TRACE_ENABLED() (::hgpcn::Tracer::global().enabled())

/** Open a wall-clock RAII span on the global tracer. The argument
 *  expressions (typically string concatenations) are evaluated only
 *  when tracing is on — the off cost is one relaxed load. */
#define HGPCN_TRACE_WALL_SPAN(varname, ...)                            \
    ::hgpcn::TraceSpan varname;                                        \
    if (::hgpcn::Tracer::global().enabled()) {                         \
        varname.begin(::hgpcn::Tracer::global(), __VA_ARGS__);         \
    }                                                                  \
    static_assert(true, "")

/**
 * Guarded event record: @p call runs only when tracing is on.
 * Usage: HGPCN_TRACE_EVENT(Tracer::global().instant(...)).
 */
#define HGPCN_TRACE_EVENT(call)                                        \
    do {                                                               \
        if (::hgpcn::Tracer::global().enabled()) {                     \
            ::hgpcn::call;                                             \
        }                                                              \
    } while (0)

#endif // HGPCN_TRACING_DISABLED

} // namespace hgpcn

#endif // HGPCN_OBS_TRACE_H
