/**
 * @file
 * Chrome/Perfetto trace_event JSON export for Tracer snapshots.
 *
 * Output layout (load with ui.perfetto.dev or chrome://tracing):
 *  - pid 1 = "virtual-time" process, pid 2 = "wall-clock" process.
 *  - Every distinct track name becomes a tid on its clock's pid,
 *    numbered in sorted-track order and labeled with a thread_name
 *    metadata event.
 *  - Spans are "X" (complete) events, instants "i", counter samples
 *    "C"; ts/dur are microseconds; frame/sensor/shard/batch ids ride
 *    in args.
 *
 * Determinism: events are emitted in the canonical snapshot() order
 * with fixed "%.9g" number formatting, so a virtual-only export of a
 * deterministic run is byte-identical across runs (CI byte-compares
 * two exports).
 */

#ifndef HGPCN_OBS_TRACE_EXPORT_H
#define HGPCN_OBS_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "obs/trace.h"

namespace hgpcn
{

/** Which clocks to include in an export. */
struct TraceExportOptions
{
    bool includeWall = true;
    bool includeVirtual = true;
};

/** Render events (canonical snapshot order) as trace_event JSON. */
std::string chromeTraceJson(const std::vector<TraceEvent> &events,
                            const TraceExportOptions &opts = {});

/** chromeTraceJson straight to @p path (fatal on I/O error). */
void writeChromeTrace(const std::string &path,
                      const std::vector<TraceEvent> &events,
                      const TraceExportOptions &opts = {});

} // namespace hgpcn

#endif // HGPCN_OBS_TRACE_EXPORT_H
