#include "obs/trace_export.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace hgpcn
{

namespace
{

/** Fixed-format number: enough digits for microsecond stamps on
 *  hour-long traces, deterministic for identical doubles. */
std::string
num(double x)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", x);
    return buf;
}

/** Minimal JSON string escape (names here are ASCII by contract). */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

int
pidFor(TraceClock clock)
{
    return clock == TraceClock::Virtual ? 1 : 2;
}

void
appendIds(std::ostringstream &oss, const TraceIds &ids, bool &first)
{
    const auto field = [&](const char *key, std::int64_t v) {
        if (v < 0)
            return;
        if (!first)
            oss << ",";
        first = false;
        oss << "\"" << key << "\":" << v;
    };
    field("frame", ids.frame);
    field("sensor", ids.sensor);
    field("shard", ids.shard);
    field("batch", ids.batch);
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events,
                const TraceExportOptions &opts)
{
    const auto keep = [&](const TraceEvent &ev) {
        return ev.clock == TraceClock::Virtual ? opts.includeVirtual
                                               : opts.includeWall;
    };

    // tid per (pid, track), numbered in sorted-track order so the
    // assignment is independent of event order.
    std::map<std::pair<int, std::string>, int> tid_of;
    for (const TraceEvent &ev : events) {
        if (keep(ev))
            tid_of.emplace(
                std::make_pair(pidFor(ev.clock), ev.track), 0);
    }
    {
        int next = 1;
        for (auto &[key, tid] : tid_of)
            tid = next++;
    }

    std::ostringstream oss;
    oss << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first_ev = true;
    const auto emit = [&](const std::string &body) {
        if (!first_ev)
            oss << ",";
        first_ev = false;
        oss << "\n" << body;
    };

    emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"virtual-time\"}}");
    emit("{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
         "\"args\":{\"name\":\"wall-clock\"}}");
    for (const auto &[key, tid] : tid_of) {
        std::ostringstream meta;
        meta << "{\"ph\":\"M\",\"pid\":" << key.first
             << ",\"tid\":" << tid
             << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
             << esc(key.second) << "\"}}";
        emit(meta.str());
    }

    for (const TraceEvent &ev : events) {
        if (!keep(ev))
            continue;
        const int pid = pidFor(ev.clock);
        const int tid = tid_of.at({pid, ev.track});
        std::ostringstream e;
        e << "{\"ph\":\"";
        switch (ev.phase) {
          case TracePhase::Complete:
            e << "X";
            break;
          case TracePhase::Instant:
            e << "i";
            break;
          case TracePhase::Counter:
            e << "C";
            break;
        }
        e << "\",\"pid\":" << pid << ",\"tid\":" << tid
          << ",\"ts\":" << num(ev.tsSec * 1e6);
        if (ev.phase == TracePhase::Complete)
            e << ",\"dur\":" << num(ev.durSec * 1e6);
        if (ev.phase == TracePhase::Instant)
            e << ",\"s\":\"t\"";
        e << ",\"name\":\"" << esc(ev.name) << "\"";
        if (!ev.cat.empty())
            e << ",\"cat\":\"" << esc(ev.cat) << "\"";
        e << ",\"args\":{";
        bool first_arg = true;
        appendIds(e, ev.ids, first_arg);
        if (ev.phase == TracePhase::Counter) {
            if (!first_arg)
                e << ",";
            first_arg = false;
            e << "\"value\":" << num(ev.value);
        }
        e << "}}";
        emit(e.str());
    }

    oss << "\n]}\n";
    return oss.str();
}

void
writeChromeTrace(const std::string &path,
                 const std::vector<TraceEvent> &events,
                 const TraceExportOptions &opts)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace output file: ", path);
    out << chromeTraceJson(events, opts);
    if (!out)
        fatal("failed writing trace output file: ", path);
}

} // namespace hgpcn
