/**
 * @file
 * MetricsRegistry: named counters, gauges, and fixed-bucket
 * histograms with lock-light updates and mergeable snapshots.
 *
 * Contract (docs/OBSERVABILITY.md):
 *  - Registration (counter()/gauge()/histogram()) takes a registry
 *    mutex and returns a reference that stays valid for the
 *    registry's lifetime; updates on the returned objects are
 *    atomic and never take that mutex.
 *  - snapshot() freezes every instrument into plain numbers; two
 *    snapshots merge by summation (counters, gauge totals,
 *    histogram buckets), which is what ServingReport needs to fold
 *    per-shard registries into fleet totals.
 *  - Histogram percentiles use the nearest-rank rule of
 *    percentileNearestRank (rank = ceil(q*n), 1-based, clamped)
 *    applied to bucket upper bounds, so they quantize to the bucket
 *    grid; exact-sample percentiles (frame latency) stay on sorted
 *    vectors and are NOT replaced by histograms.
 */

#ifndef HGPCN_OBS_METRICS_H
#define HGPCN_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hgpcn
{

/** Monotone event count. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-written level (set) or accumulated total (add). */
class Gauge
{
  public:
    void
    set(double x)
    {
        v_.store(x, std::memory_order_relaxed);
    }

    void
    add(double delta)
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed))
            ;
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket histogram: N ascending upper bounds plus an implicit
 * overflow bucket. observe() is a branchless-ish scan (bucket counts
 * are atomics); percentile() quantizes to bucket upper bounds.
 */
class Histogram
{
  public:
    /** @param bounds Ascending bucket upper bounds (non-empty). */
    explicit Histogram(std::vector<double> bounds);

    void observe(double x);

    std::uint64_t count() const;
    double sum() const;
    double min() const; //!< 0 when empty
    double max() const; //!< 0 when empty

    const std::vector<double> &
    bounds() const
    {
        return bounds_;
    }

    /** Count in bucket @p i (i == bounds().size() is overflow). */
    std::uint64_t bucketCount(std::size_t i) const;

    /**
     * Nearest-rank percentile over bucket upper bounds: the upper
     * bound of the bucket containing rank ceil(q*count); observed
     * max for the overflow bucket; 0 when empty.
     */
    double percentile(double q) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_; //!< size+1
    std::atomic<std::uint64_t> count_{0};
    Gauge sum_;
    std::atomic<double> min_;
    std::atomic<double> max_;
};

/** One frozen instrument inside a MetricsSnapshot. */
struct MetricValue
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    Kind kind = Kind::Counter;
    std::uint64_t count = 0;        //!< counter value / histogram n
    double value = 0.0;             //!< gauge level / histogram sum
    double min = 0.0;               //!< histogram only
    double max = 0.0;               //!< histogram only
    std::vector<double> bounds;     //!< histogram only
    std::vector<std::uint64_t> buckets; //!< histogram only (size+1)

    /** Nearest-rank percentile (Histogram kind only). */
    double percentile(double q) const;
};

/** A frozen, mergeable view of a registry. */
struct MetricsSnapshot
{
    std::map<std::string, MetricValue> values;

    bool
    empty() const
    {
        return values.empty();
    }

    /** @return value under @p name or nullptr. */
    const MetricValue *find(const std::string &name) const;

    /** Counter/histogram count under @p name, 0 when absent. */
    std::uint64_t countOf(const std::string &name) const;

    /**
     * Fold @p other in: counters and histogram buckets add, gauges
     * add (a merged gauge is a fleet total), histogram min/max
     * widen. Merging histograms with different bounds is a panic.
     */
    void merge(const MetricsSnapshot &other);

    /** "name value" lines, sorted by name (deterministic). */
    std::string toString() const;
};

/**
 * The registry: name -> instrument. One per StreamRunner; shard
 * registries merge into a fleet snapshot in ServingResult.
 */
class MetricsRegistry
{
  public:
    /** Find-or-create; the reference outlives the call. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /**
     * Find-or-create; re-registration with different bounds is a
     * panic (bounds define the merge contract).
     */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds);

    MetricsSnapshot snapshot() const;

    /** Drop every instrument. */
    void clear();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace hgpcn

#endif // HGPCN_OBS_METRICS_H
