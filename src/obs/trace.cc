#include "obs/trace.h"

#include <algorithm>
#include <tuple>

namespace hgpcn
{

namespace
{

/** Monotone instance ids so thread-local caches never alias a
 *  destroyed tracer with a newly constructed one. */
std::atomic<std::uint64_t> next_tracer_id{1};

/** Canonical payload-only ordering (see Tracer::snapshot()). */
bool
canonicalLess(const TraceEvent &a, const TraceEvent &b)
{
    return std::tie(a.clock, a.tsSec, a.track, a.name, a.ids.frame,
                    a.ids.sensor, a.ids.shard, a.ids.batch, a.phase,
                    a.durSec, a.value, a.cat) <
           std::tie(b.clock, b.tsSec, b.track, b.name, b.ids.frame,
                    b.ids.sensor, b.ids.shard, b.ids.batch, b.phase,
                    b.durSec, b.value, b.cat);
}

} // namespace

namespace
{

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Tracer::Tracer()
    : id_(next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epochNs_(steadyNowNs())
{
}

Tracer::~Tracer() = default;

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setEnabled(bool on)
{
    on_.store(on, std::memory_order_relaxed);
}

Tracer::ThreadBuffer &
Tracer::buffer()
{
    // Cache the buffer per (thread, tracer instance). Buffers live
    // as long as the tracer, so the cached pointer stays valid; the
    // instance id guards against a destroyed-then-reallocated
    // tracer at the same address.
    struct Cache
    {
        std::uint64_t tracer_id = 0;
        ThreadBuffer *buf = nullptr;
    };
    thread_local Cache cache;
    if (cache.tracer_id == id_ && cache.buf)
        return *cache.buf;
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    cache.tracer_id = id_;
    cache.buf = buffers_.back().get();
    return *cache.buf;
}

void
Tracer::record(TraceEvent ev)
{
    if (!enabled())
        return;
    ThreadBuffer &buf = buffer();
    std::lock_guard<std::mutex> lock(buf.mu);
    buf.events.push_back(std::move(ev));
}

void
Tracer::span(TraceClock clock, double tsSec, double durSec,
             std::string name, std::string cat, std::string track,
             TraceIds ids)
{
    TraceEvent ev;
    ev.phase = TracePhase::Complete;
    ev.clock = clock;
    ev.tsSec = tsSec;
    ev.durSec = durSec;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.track = std::move(track);
    ev.ids = ids;
    record(std::move(ev));
}

void
Tracer::instant(TraceClock clock, double tsSec, std::string name,
                std::string cat, std::string track, TraceIds ids)
{
    TraceEvent ev;
    ev.phase = TracePhase::Instant;
    ev.clock = clock;
    ev.tsSec = tsSec;
    ev.name = std::move(name);
    ev.cat = std::move(cat);
    ev.track = std::move(track);
    ev.ids = ids;
    record(std::move(ev));
}

void
Tracer::counter(TraceClock clock, double tsSec, std::string name,
                std::string track, double value)
{
    TraceEvent ev;
    ev.phase = TracePhase::Counter;
    ev.clock = clock;
    ev.tsSec = tsSec;
    ev.value = value;
    ev.name = std::move(name);
    ev.track = std::move(track);
    record(std::move(ev));
}

double
Tracer::wallNowSec() const
{
    const std::int64_t now = steadyNowNs();
    return static_cast<double>(
               now - epochNs_.load(std::memory_order_relaxed)) *
           1e-9;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &buf : buffers_) {
            std::lock_guard<std::mutex> inner(buf->mu);
            out.insert(out.end(), buf->events.begin(),
                       buf->events.end());
        }
    }
    std::sort(out.begin(), out.end(), canonicalLess);
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> inner(buf->mu);
        buf->events.clear();
    }
    epochNs_.store(steadyNowNs(), std::memory_order_relaxed);
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> inner(buf->mu);
        n += buf->events.size();
    }
    return n;
}

} // namespace hgpcn
